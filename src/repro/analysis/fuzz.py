"""Deterministic scenario fuzzing over the sharded multi-world engine.

The paper's claims are quantified over *all* admissible runs; hand-written
scenarios (``experiments.py``) explore a sliver of that space. This module
generates whole families of adversarial scenarios — topology size, failure
sets and timing, adversary delay/partition schedules, detector choice and
parameters, protocol choice, application chatter — from nothing but a
``(seed, index, config)`` triple, runs them through
:class:`~repro.sim.multiworld.ShardedRunner` with streaming conformance
monitors attached, and flags every scenario where

* the **streaming** verdict disagrees with a **batch** replay of the same
  history (the differential oracle: two implementations of every paper
  property judged against each other), or
* a property the configuration *should* satisfy is violated (the model
  oracle: e.g. a bounds-enforced Section 5 run must never trip sFS2b-d,
  per Theorem 5 — see :func:`expected_clean` for the per-configuration
  contract).

Everything is a pure function of the inputs: the same
``python -m repro fuzz --seed S --count N`` invocation replays the same
scenarios, the same runs, and the same report digest, byte for byte —
which is what makes a fuzz finding *shareable* (the scenario's repr is
the reproducer).
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass

from pathlib import Path
from typing import Sequence

from repro.analysis.coverage import (
    AxisWeights,
    CoverageMap,
    derive_weights,
    weighted_choice,
)
from repro.analysis.monitors import MonitorSet
from repro.core.bounds import max_tolerable_t
from repro.core.failure_models import FAILURE_MODEL_NAMES, get_failure_model
from repro.detectors.heartbeat import HeartbeatDriver
from repro.detectors.phi_accrual import PhiAccrualDriver
from repro.errors import SimulationError
from repro.exec import (
    EXEC_BACKENDS,
    CampaignJournal,
    InprocExecutor,
    JobSpec,
    ResultSink,
    effective_backend,
    job_digest,
    make_executor,
    run_jobs,
)
from repro.protocols.generic import GenericOneRoundProcess
from repro.protocols.recovery import make_recovering
from repro.protocols.sfs import SfsProcess
from repro.protocols.transitive import TransitiveSfsProcess
from repro.protocols.unilateral import UnilateralProcess
from repro.sim.delays import (
    ConstantDelay,
    DelayModel,
    ExponentialDelay,
    LogNormalDelay,
    ParetoDelay,
    UniformDelay,
)
from repro.sim.failures import (
    Fault,
    apply_faults,
    random_byzantine_plan,
    random_fault_plan,
    random_recovery_plan,
)
from repro.sim.multiworld import ShardSpec, ShardedRunner
from repro.sim.world import World

PROTOCOLS = ("sfs", "transitive", "generic", "unilateral")
"""Fuzzable protocol ids (Section 5, its piggybacked variant, the
Section 4 skeleton, and the Section 6 cheap model)."""

DELAY_FAMILIES = ("constant", "uniform", "exponential", "lognormal", "pareto")
"""Fuzzable delay-model families (see :mod:`repro.sim.delays`)."""

DETECTORS = ("none", "heartbeat", "phi")
"""Fuzzable suspicion sources; ``"none"`` means injected suspicions only."""


@dataclass(frozen=True)
class FuzzConfig:
    """Bounds of the scenario space one fuzz run draws from.

    The config is part of the reproducer: :func:`generate_scenario` is a
    pure function of ``(seed, index, config)``, so changing any field
    changes the scenarios (and the report digest) deterministically.

    ``detector_rate`` exists because detector-driven scenarios are run to
    a virtual-time horizon under continuous heartbeat traffic — an order
    of magnitude more events than injected-fault scenarios — so they are
    sampled, not drawn uniformly.

    ``failure_model`` selects the fault vocabulary the fuzzer draws from
    (and the semantics every generated world runs under): ``"fail-stop"``
    crashes are forever, ``"crash-recovery"`` plans crash/recover churn
    and runs the protocols under the black-box wrapper of
    :mod:`repro.protocols.recovery`, ``"byzantine-crash"`` compromises up
    to ``t`` senders. The default reproduces the historical scenario
    stream byte for byte (``repr`` included), so pre-existing digests
    stay valid.
    """

    min_n: int = 3
    max_n: int = 12
    protocols: tuple[str, ...] = PROTOCOLS
    delays: tuple[str, ...] = DELAY_FAMILIES
    detectors: tuple[str, ...] = DETECTORS
    detector_rate: float = 0.2
    adversary_rate: float = 0.4
    partition_rate: float = 0.15
    fault_horizon: float = 8.0
    detector_horizon: float = 30.0
    max_chatter: int = 12
    failure_model: str = "fail-stop"

    def __repr__(self) -> str:
        # Byte-identical to the pre-failure-model dataclass repr when the
        # new field keeps its default: reprs seed job identities and
        # journal keys, which must not shift under existing configs.
        base = (
            f"FuzzConfig(min_n={self.min_n!r}, max_n={self.max_n!r}, "
            f"protocols={self.protocols!r}, delays={self.delays!r}, "
            f"detectors={self.detectors!r}, "
            f"detector_rate={self.detector_rate!r}, "
            f"adversary_rate={self.adversary_rate!r}, "
            f"partition_rate={self.partition_rate!r}, "
            f"fault_horizon={self.fault_horizon!r}, "
            f"detector_horizon={self.detector_horizon!r}, "
            f"max_chatter={self.max_chatter!r}"
        )
        if self.failure_model != "fail-stop":
            base += f", failure_model={self.failure_model!r}"
        return base + ")"

    def __post_init__(self) -> None:
        get_failure_model(self.failure_model)  # raises on unknown names
        # min_n >= 2: a 1-process system can suspect no one, and it is
        # the only n where max_tolerable_t(n) < 1 would break the
        # Corollary 8 invariant (n > t^2) the model oracle relies on.
        if not 2 <= self.min_n <= self.max_n:
            raise SimulationError(
                f"need 2 <= min_n <= max_n, got {self.min_n}..{self.max_n}"
            )
        for name, pool in (
            ("protocols", PROTOCOLS),
            ("delays", DELAY_FAMILIES),
            ("detectors", DETECTORS),
        ):
            unknown = sorted(set(getattr(self, name)) - set(pool))
            if unknown:
                raise SimulationError(
                    f"unknown {name} in FuzzConfig: {', '.join(map(str, unknown))}"
                )


@dataclass(frozen=True)
class Scenario:
    """One fully materialised fuzz scenario (every choice already made).

    All fields are plain values with content-stable ``repr``, so a
    scenario is its own reproducer and hashes identically across
    processes: paste the repr back in, or re-derive it from
    ``(seed, index, config)``.
    """

    index: int
    seed: int  # world RNG seed (derived, not the fuzz seed)
    n: int
    protocol: str
    t: int
    quorum_size: int | None
    delay: tuple[str, tuple[float, ...]]
    detector: tuple[str, tuple[float, ...]]
    faults: tuple[Fault, ...]
    holds: tuple[tuple[int, tuple[int, ...]], ...]
    partition: tuple[tuple[int, ...], tuple[int, ...]] | None
    heal_at: float | None
    chatter: tuple[tuple[float, int, int, int], ...]
    horizon: float | None
    failure_model: str = "fail-stop"

    def __repr__(self) -> str:
        # Scenario reprs feed FuzzReport.digest(); under the default
        # model this must match the pre-failure-model dataclass repr byte
        # for byte so historical fuzz digests keep reproducing.
        base = (
            f"Scenario(index={self.index!r}, seed={self.seed!r}, "
            f"n={self.n!r}, protocol={self.protocol!r}, t={self.t!r}, "
            f"quorum_size={self.quorum_size!r}, delay={self.delay!r}, "
            f"detector={self.detector!r}, faults={self.faults!r}, "
            f"holds={self.holds!r}, partition={self.partition!r}, "
            f"heal_at={self.heal_at!r}, chatter={self.chatter!r}, "
            f"horizon={self.horizon!r}"
        )
        if self.failure_model != "fail-stop":
            base += f", failure_model={self.failure_model!r}"
        return base + ")"


# ----------------------------------------------------------------------
# Generation
# ----------------------------------------------------------------------


def _round(value: float) -> float:
    """Clip generator floats to a short, repr-friendly precision."""
    return round(value, 4)


def _draw_protocol_bounds(
    protocol: str, n: int, rng: random.Random
) -> tuple[int, int | None]:
    """The ``(t, quorum_size)`` draw for one protocol choice."""
    if protocol in ("sfs", "transitive"):
        # Bounds-enforced Section 5 deployments: Theorem 5 applies, so
        # the oracle below may demand full sFS conformance. n >= 2
        # guarantees max_tolerable_t(n) >= 1, keeping n > t^2.
        return rng.randint(1, max_tolerable_t(n)), None
    if protocol == "generic":
        t = rng.randint(1, max(1, n // 2))
        return t, rng.randint(1, n)  # probe illegal sizes on purpose
    # unilateral
    return rng.randint(1, max(1, n // 2)), None


def _draw_delay_params(
    family: str, rng: random.Random
) -> tuple[float, ...]:
    """The parameter draw for one delay-family choice."""
    if family == "constant":
        return (_round(rng.uniform(0.1, 1.5)),)
    if family == "uniform":
        low = _round(rng.uniform(0.05, 1.0))
        return (low, _round(low + rng.uniform(0.1, 2.0)))
    if family == "exponential":
        return (_round(rng.uniform(0.3, 1.5)),)
    if family == "lognormal":
        return (
            _round(rng.uniform(0.4, 1.5)),
            _round(rng.uniform(0.2, 0.8)),
        )
    # pareto
    return (
        _round(rng.uniform(0.2, 0.8)),
        _round(rng.uniform(1.3, 2.5)),
    )


def _draw_detector_params(
    kind: str, rng: random.Random
) -> tuple[str, tuple[float, ...]]:
    """The parameter draw for one (non-``"none"``) detector choice."""
    interval = _round(rng.uniform(0.5, 2.0))
    if kind == "heartbeat":
        return (
            "heartbeat",
            (interval, _round(interval * rng.uniform(3.0, 10.0))),
        )
    return ("phi", (interval, _round(rng.uniform(2.0, 8.0))))


def _draw_faults(
    config: FuzzConfig, n: int, t: int, rng: random.Random
) -> tuple[Fault, ...]:
    """The model-specific fault-plan draw.

    Model-specific plans draw different amounts of randomness; only the
    default branch must preserve the historical draw order.
    """
    if config.failure_model == "crash-recovery":
        return tuple(
            random_recovery_plan(n, t, rng, horizon=config.fault_horizon)
        )
    if config.failure_model == "byzantine-crash":
        return tuple(
            random_byzantine_plan(n, t, rng, horizon=config.fault_horizon)
        )
    return tuple(random_fault_plan(n, t, rng, horizon=config.fault_horizon))


def _draw_holds(
    n: int, faults: tuple[Fault, ...], rng: random.Random
) -> tuple[tuple[int, tuple[int, ...]], ...]:
    """The adversary suspicion-hold draw (given holds were chosen)."""
    targets = sorted(
        {f.target if f.target is not None else f.proc for f in faults}
    ) or [rng.randrange(n)]
    picked = rng.sample(targets, k=min(len(targets), rng.randint(1, 2)))
    hold_list = []
    for target in picked:
        others = [p for p in range(n) if p != target]
        shield = {target} | set(
            rng.sample(others, k=rng.randint(0, max(0, (n - 1) // 3)))
        )
        hold_list.append((target, tuple(sorted(shield))))
    return tuple(hold_list)


def _draw_partition(
    n: int, rng: random.Random
) -> tuple[tuple[int, ...], tuple[int, ...]]:
    """The network-partition draw (given a partition was chosen)."""
    cut = rng.randint(1, n - 1)
    members = list(range(n))
    rng.shuffle(members)
    return (
        tuple(sorted(members[:cut])),
        tuple(sorted(members[cut:])),
    )


def _draw_chatter(
    config: FuzzConfig, n: int, rng: random.Random
) -> tuple[tuple[float, int, int, int], ...]:
    """The application-chatter draw."""
    return tuple(
        sorted(
            (
                _round(rng.uniform(0.1, config.fault_horizon + 4.0)),
                rng.randrange(n),
                rng.randrange(n),
                tag,
            )
            for tag in range(rng.randint(0, config.max_chatter))
        )
    )


def generate_scenario(seed: int, index: int, config: FuzzConfig) -> Scenario:
    """The ``index``-th scenario of fuzz run ``seed`` under ``config``.

    Derivation is via ``random.Random(f"{seed}:{index}")`` — string
    seeding hashes with SHA-512, so the stream is stable across processes
    and interpreter restarts (unlike ``hash()``-based derivations).

    The helper draws are shared with :func:`generate_weighted_scenario`;
    the call order here reproduces the historical uniform stream byte
    for byte (pinned by the legacy digest tests).
    """
    rng = random.Random(f"repro-fuzz:{seed}:{index}")
    n = rng.randint(config.min_n, config.max_n)
    protocol = rng.choice(config.protocols)
    t, quorum_size = _draw_protocol_bounds(protocol, n, rng)

    family = rng.choice(config.delays)
    delay_params = _draw_delay_params(family, rng)

    detector = ("none", ())
    choices = tuple(d for d in config.detectors if d != "none")
    if choices and rng.random() < config.detector_rate:
        detector = _draw_detector_params(rng.choice(choices), rng)

    faults = _draw_faults(config, n, t, rng)

    holds: tuple[tuple[int, tuple[int, ...]], ...] = ()
    if rng.random() < config.adversary_rate:
        holds = _draw_holds(n, faults, rng)

    partition = None
    if n >= 2 and rng.random() < config.partition_rate:
        partition = _draw_partition(n, rng)

    heal_at = (
        _round(rng.uniform(10.0, 20.0)) if holds or partition else None
    )

    chatter = _draw_chatter(config, n, rng)

    return Scenario(
        index=index,
        seed=rng.getrandbits(32),
        n=n,
        protocol=protocol,
        t=t,
        quorum_size=quorum_size,
        delay=(family, delay_params),
        detector=detector,
        faults=faults,
        holds=holds,
        partition=partition,
        heal_at=heal_at,
        chatter=chatter,
        horizon=(
            config.detector_horizon if detector[0] != "none" else None
        ),
        failure_model=config.failure_model,
    )


def generate_weighted_scenario(
    seed: int, index: int, config: FuzzConfig, weights: AxisWeights
) -> Scenario:
    """The ``index``-th *adaptive* scenario under explicit axis weights.

    A pure function of ``(seed, index, config, weights)`` — the adaptive
    loop's coverage feedback is entirely inside ``weights``, so an
    adaptive job (which carries its weights in its params) is exactly as
    self-contained a reproducer as a uniform one. The RNG namespace is
    distinct from :func:`generate_scenario`'s on purpose: index *i* of an
    adaptive campaign is not index *i* of a uniform run, and the streams
    must never collide.

    Weighted axes (n, protocol, delay family, detector, adversary
    schedule shape) draw through
    :func:`~repro.analysis.coverage.weighted_choice`; everything inside
    an axis choice reuses the same ``_draw_*`` helpers as the uniform
    generator, so the adaptive fuzzer explores *where* the map steers it
    with the same local distributions the uniform fuzzer has always had.
    """
    rng = random.Random(f"repro-fuzz-adaptive:{seed}:{index}")
    n = weighted_choice(rng, weights.ns)
    protocol = weighted_choice(rng, weights.protocols)
    t, quorum_size = _draw_protocol_bounds(protocol, n, rng)

    family = weighted_choice(rng, weights.delays)
    delay_params = _draw_delay_params(family, rng)

    detector = ("none", ())
    kind = weighted_choice(rng, weights.detectors)
    if kind != "none":
        detector = _draw_detector_params(kind, rng)

    faults = _draw_faults(config, n, t, rng)

    shape = weighted_choice(rng, weights.shapes)
    holds: tuple[tuple[int, tuple[int, ...]], ...] = ()
    if shape in ("holds", "both"):
        holds = _draw_holds(n, faults, rng)
    partition = None
    if shape in ("partition", "both"):
        partition = _draw_partition(n, rng)

    heal_at = (
        _round(rng.uniform(10.0, 20.0)) if holds or partition else None
    )

    chatter = _draw_chatter(config, n, rng)

    return Scenario(
        index=index,
        seed=rng.getrandbits(32),
        n=n,
        protocol=protocol,
        t=t,
        quorum_size=quorum_size,
        delay=(family, delay_params),
        detector=detector,
        faults=faults,
        holds=holds,
        partition=partition,
        heal_at=heal_at,
        chatter=chatter,
        horizon=(
            config.detector_horizon if detector[0] != "none" else None
        ),
        failure_model=config.failure_model,
    )


# ----------------------------------------------------------------------
# Materialisation
# ----------------------------------------------------------------------

_DELAY_BUILDERS = {
    "constant": lambda p: ConstantDelay(*p),
    "uniform": lambda p: UniformDelay(*p),
    "exponential": lambda p: ExponentialDelay(*p),
    "lognormal": lambda p: LogNormalDelay(*p),
    "pareto": lambda p: ParetoDelay(*p),
}


def _delay_model(scenario: Scenario) -> DelayModel:
    family, params = scenario.delay
    return _DELAY_BUILDERS[family](params)


def _make_process(scenario: Scenario):
    kind, params = scenario.detector
    detector = None
    if kind == "heartbeat":
        detector = HeartbeatDriver(interval=params[0], timeout=params[1])
    elif kind == "phi":
        detector = PhiAccrualDriver(interval=params[0], threshold=params[1])
    classes = {
        "sfs": SfsProcess,
        "transitive": TransitiveSfsProcess,
        "generic": GenericOneRoundProcess,
        "unilateral": UnilateralProcess,
    }
    cls = classes[scenario.protocol]
    if get_failure_model(scenario.failure_model).recoverable:
        # Crash-recovery runs the *unmodified* crash-stop protocols under
        # the YOLMT wrapper; the classes themselves stay untouched.
        cls = make_recovering(cls)
    if scenario.protocol == "generic":
        assert scenario.quorum_size is not None
        return cls(quorum_size=scenario.quorum_size, detector=detector)
    if scenario.protocol == "unilateral":
        return cls(detector=detector)
    return cls(t=scenario.t, detector=detector)


def build_scenario_world(scenario: Scenario) -> World:
    """A ready-to-run world for one scenario, monitors already attached.

    The attached :class:`~repro.analysis.monitors.MonitorSet` (reachable
    as ``world.monitors``) streams over every recorded event; it is *not*
    set to stop on violation — the fuzzer wants the complete history so
    the batch replay judges exactly the same run.
    """
    world = World(
        [_make_process(scenario) for _ in range(scenario.n)],
        _delay_model(scenario),
        seed=scenario.seed,
        failure_model=scenario.failure_model,
    )
    world.attach_monitor(
        MonitorSet(
            scenario.n,
            pending_ok=True,
            failure_model=scenario.failure_model,
        )
    )
    apply_faults(world, list(scenario.faults))
    for target, shield in scenario.holds:
        world.adversary.hold_suspicions_about(target, frozenset(shield))
    if scenario.partition is not None:
        side_a, side_b = scenario.partition
        world.adversary.partition(side_a, side_b)
    if scenario.heal_at is not None:
        world.scheduler.schedule_at(scenario.heal_at, world.adversary.heal)
    for at, src, dst, tag in scenario.chatter:
        proc = world.process(src)

        def send_chatter(p=proc, d=dst, g=tag) -> None:
            p.send(d, ("fuzz", p.pid, g))

        world.scheduler.schedule_at(at, send_chatter)
    return world


# ----------------------------------------------------------------------
# Oracles
# ----------------------------------------------------------------------


def expected_clean(scenario: Scenario) -> tuple[str, ...]:
    """Halt-relevant monitors this configuration must never trip.

    * Every simulated run must record a **well-formed** history and never
      self-detect (``valid``, ``sFS2c``) — these are structural.
    * A bounds-enforced Section 5 deployment (``sfs``/``transitive``)
      satisfies all of sFS (Theorem 5) **provided the failure bound
      holds**: with injected faults the plan respects ``t`` by
      construction, but a live detector can manufacture arbitrarily many
      erroneous suspicions, so detector scenarios only keep the
      structural and FIFO-propagation guarantees.
    * The unilateral (Section 6) model keeps sFS2d (the broadcast
      precedes any later message on every FIFO channel) but not sFS2b.
    * The Section 4 skeleton (``generic``) promises neither: it exists to
      probe illegal quorum sizes, where cycles are the *point*.
    * Under **crash-recovery** the sFS guarantees are void (the paper's
      theorems assume crash-stop) but the run must still be well-formed
      under the model's rules, never self-detect, and respect the
      incarnation discipline (``recovery``).
    * Under **byzantine-crash** only the structural guarantees survive:
      the adversary forges nothing with a valid uid, so histories stay
      well-formed, but tampered suspicion traffic voids every sFS bound.
    """
    if scenario.failure_model == "crash-recovery":
        return ("valid", "sFS2c", "recovery")
    if scenario.failure_model == "byzantine-crash":
        return ("valid", "sFS2c")
    base = ("valid", "sFS2c")
    if scenario.protocol in ("sfs", "transitive"):
        if scenario.detector[0] == "none":
            return base + ("sFS2b", "sFS2d", "Conditions1-3")
        return base + ("sFS2d",)
    if scenario.protocol == "unilateral":
        return base + ("sFS2d",)
    return base


def judge_world(scenario: Scenario, world: World) -> "FuzzOutcome":
    """Differential + model oracle for one completed scenario run."""
    monitors = world.monitors
    assert monitors is not None
    history = world.history()
    findings: list[str] = []

    replay = MonitorSet(
        scenario.n, pending_ok=True, failure_model=scenario.failure_model
    ).replay(history)
    if replay.violation_log != monitors.violation_log:
        findings.append(
            "stream/batch divergence: violation logs differ "
            f"(stream={monitors.violation_log!r}, "
            f"batch={replay.violation_log!r})"
        )
    stream_results = monitors.check_results()
    batch_results = replay.check_results()
    if stream_results != batch_results:
        diff = sorted(
            name
            for name in stream_results
            if stream_results[name] != batch_results.get(name)
        )
        findings.append(
            f"stream/batch divergence: check results differ on "
            f"{', '.join(diff)}"
        )
    if replay.bad_pairs.count != monitors.bad_pairs.count:
        findings.append(
            "stream/batch divergence: bad-pair counts differ "
            f"({monitors.bad_pairs.count} != {replay.bad_pairs.count})"
        )

    tripped = {name for _, name in monitors.violation_log}
    for name in expected_clean(scenario):
        if name in tripped:
            locked = next(
                idx for idx, mon in monitors.violation_log if mon == name
            )
            findings.append(
                f"model violation: {name} tripped at event {locked} in a "
                f"{scenario.protocol} scenario that must satisfy it"
            )

    return FuzzOutcome(
        index=scenario.index,
        scenario=scenario,
        events=len(world.trace),
        violations=tuple(monitors.violation_log),
        findings=tuple(findings),
        coverage=monitors.transition_coverage(),
    )


# ----------------------------------------------------------------------
# Reports
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class FuzzOutcome:
    """One scenario's verdicts: what tripped, and what that means.

    ``coverage`` carries the monitor-transition labels the run produced
    (see :meth:`~repro.analysis.monitors.MonitorSet.transition_coverage`)
    for the adaptive loop's :class:`~repro.analysis.coverage.CoverageMap`.
    It is deliberately absent from the ``repr``: reprs feed
    :meth:`FuzzReport.digest`, which must keep reproducing historical
    digests byte for byte. The labels are themselves a pure function of
    the history the digest already covers, so hiding them loses nothing.
    """

    index: int
    scenario: Scenario
    events: int
    violations: tuple[tuple[int, str], ...]
    findings: tuple[str, ...]
    coverage: tuple[str, ...] = ()

    def __repr__(self) -> str:
        return (
            f"FuzzOutcome(index={self.index!r}, "
            f"scenario={self.scenario!r}, events={self.events!r}, "
            f"violations={self.violations!r}, findings={self.findings!r})"
        )

    @property
    def ok(self) -> bool:
        """Whether the scenario produced no finding (violations that the
        configuration legitimately allows do not count)."""
        return not self.findings


@dataclass(frozen=True)
class FuzzReport:
    """The full, digest-stable result of one fuzz run."""

    seed: int
    count: int
    outcomes: tuple[FuzzOutcome, ...]

    @property
    def findings(self) -> tuple[tuple[int, str], ...]:
        """Every finding across the run, as ``(scenario index, text)``."""
        return tuple(
            (outcome.index, finding)
            for outcome in self.outcomes
            for finding in outcome.findings
        )

    @property
    def events(self) -> int:
        """Total events recorded across all scenarios."""
        return sum(outcome.events for outcome in self.outcomes)

    def digest(self) -> str:
        """Content hash of the entire run; replays must reproduce it."""
        digest = hashlib.sha256()
        digest.update(repr((self.seed, self.count)).encode())
        for outcome in self.outcomes:
            digest.update(repr(outcome).encode())
        return digest.hexdigest()

    def summary(self) -> str:
        """A compact human-readable rendering for the CLI."""
        by_protocol: dict[str, int] = {}
        tripped: dict[str, int] = {}
        for outcome in self.outcomes:
            by_protocol[outcome.scenario.protocol] = (
                by_protocol.get(outcome.scenario.protocol, 0) + 1
            )
            for _, name in outcome.violations:
                tripped[name] = tripped.get(name, 0) + 1
        lines = [
            f"scenarios: {self.count}  events: {self.events}",
            "protocols: "
            + ", ".join(
                f"{name}={count}" for name, count in sorted(by_protocol.items())
            ),
            "violations observed (legitimate ones included): "
            + (
                ", ".join(
                    f"{name}={count}" for name, count in sorted(tripped.items())
                )
                or "none"
            ),
            f"findings: {len(self.findings)}",
        ]
        for index, finding in self.findings:
            lines.append(f"  ! scenario {index}: {finding}")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Driving
# ----------------------------------------------------------------------

DEFAULT_CONFIG = FuzzConfig()
"""The scenario space ``python -m repro fuzz`` draws from by default."""

FUZZ_JOB_KIND = "repro.analysis.fuzz:run_fuzz_job"
"""Entrypoint string fuzz jobs carry (see :mod:`repro.exec.job`)."""

FUZZ_MAX_EVENTS = 500_000
"""Per-scenario livelock valve, identical on every backend."""


SCENARIO_JOB_KIND = "repro.analysis.fuzz:run_scenario_job"
"""Entrypoint string for jobs carrying a *literal* scenario (the
shrinker's candidates and the regression corpus's replays)."""


def scenario_job(
    seed: int,
    index: int,
    config: FuzzConfig,
    weights: AxisWeights | None = None,
) -> JobSpec:
    """The ``index``-th scenario of fuzz run ``seed``, as a frozen job.

    The config rides in ``params`` (a frozen dataclass with
    content-stable repr), so the job — like the scenario — is its own
    reproducer. With ``weights`` the job describes an *adaptive* draw:
    the weights ride in ``params`` too, so the job digest covers them and
    a journaled adaptive result self-validates against the exact
    distribution that produced it.
    """
    params: tuple[tuple[str, object], ...] = (
        ("index", index),
        ("config", config),
    )
    if weights is not None:
        params += (("weights", weights),)
    return JobSpec(
        kind=FUZZ_JOB_KIND,
        spec_id="fuzz",
        seed=seed,
        params=params,
    )


def job_scenario(job: JobSpec) -> Scenario:
    """Materialise the scenario a fuzz job describes."""
    weights = job.param("weights")
    if weights is not None:
        return generate_weighted_scenario(
            job.seed, job.param("index"), job.param("config"), weights
        )
    return generate_scenario(job.seed, job.param("index"), job.param("config"))


def scenario_spec_job(scenario: Scenario) -> JobSpec:
    """A job that runs one fully materialised scenario, verbatim.

    Unlike :func:`scenario_job` there is no generator in the loop: the
    scenario itself rides in ``params`` (its repr is content-stable by
    construction). This is the execution form of "paste the repr back
    in" — the shrinker re-runs mutated candidates through it, and the
    regression corpus replays its entries with it.
    """
    return JobSpec(
        kind=SCENARIO_JOB_KIND,
        spec_id="fuzz-scenario",
        seed=scenario.seed,
        params=(("scenario", scenario),),
    )


def _scenario_shard(scenario: Scenario):
    """The one-shard form every fuzz execution path funnels through."""
    spec = ShardSpec(
        key=scenario,
        build=(lambda: build_scenario_world(scenario)),
        horizon=scenario.horizon,
        max_events=FUZZ_MAX_EVENTS,
    )
    return spec, (lambda spec, world: judge_world(spec.key, world))


def run_fuzz_job(job: JobSpec) -> FuzzOutcome:
    """Execution-layer entrypoint: run and judge one scenario, whole.

    This is the serial/parallel form. It runs the scenario as a
    one-shard :class:`~repro.sim.multiworld.ShardedRunner` pass so that
    completion and livelock-valve semantics are the shard form's *by
    construction* — not merely equivalent, the same code — keeping every
    backend bit-identical even at the valve boundary. Module-level so
    the parallel executor can resolve it by name in worker processes.
    """
    spec, collect = _fuzz_job_shard(job)
    (outcome,) = ShardedRunner(stepping="sequential").run(
        [spec], collect=collect
    )
    return outcome


def _fuzz_job_shard(job: JobSpec):
    """Shard form: lets the ``inproc`` executor step scenarios through
    :class:`~repro.sim.multiworld.ShardedRunner` (see
    :func:`repro.exec.job.shard_form`)."""
    return _scenario_shard(job_scenario(job))


run_fuzz_job.to_shard = _fuzz_job_shard


def run_scenario_job(job: JobSpec) -> FuzzOutcome:
    """Execution-layer entrypoint for literal-scenario jobs."""
    spec, collect = _scenario_job_shard(job)
    (outcome,) = ShardedRunner(stepping="sequential").run(
        [spec], collect=collect
    )
    return outcome


def _scenario_job_shard(job: JobSpec):
    """Shard form of :func:`run_scenario_job`."""
    return _scenario_shard(job.param("scenario"))


run_scenario_job.to_shard = _scenario_job_shard


def run_scenario(scenario: Scenario) -> FuzzOutcome:
    """Run and judge one materialised scenario in this process.

    The convenience form of :func:`run_scenario_job` — same one-shard
    path, so the outcome is bit-identical to what any backend would
    produce for the same scenario.
    """
    return run_scenario_job(scenario_spec_job(scenario))

FUZZ_BACKENDS = EXEC_BACKENDS
"""Valid ``backend`` arguments for :func:`run_fuzz` — the execution
layer's registered executors, by reference (one registry, no copies)."""


def run_fuzz(
    seed: int,
    count: int,
    config: FuzzConfig = DEFAULT_CONFIG,
    stepping: str = "round_robin",
    quantum: int = 512,
    window: int | None = 64,
    runner: ShardedRunner | None = None,
    backend: str | None = None,
    jobs: int = 1,
    chunksize: int | None = None,
    remote_workers: int | str | Sequence[str] | None = None,
    journal: str | Path | None = None,
    resume: bool = False,
    sink: ResultSink | None = None,
) -> FuzzReport:
    """Generate and judge ``count`` scenarios; pure in ``(seed, config)``.

    Scenarios are planned as frozen jobs and executed through
    :mod:`repro.exec`. The default backend is ``"inproc"``: scenarios run
    as shards of a :class:`~repro.sim.multiworld.ShardedRunner` (pass
    ``runner`` to control stepping or to read back
    :class:`~repro.sim.multiworld.RunnerStats` afterwards; or let
    ``stepping``/``quantum``/``window`` build one). ``"serial"`` runs
    each scenario whole in this process, ``"parallel"`` fans them out
    to a pool of ``jobs`` workers, and ``"remote"`` dispatches them to
    the worker fleet ``remote_workers`` configures (see
    :mod:`repro.exec.remote`) — the report is identical on every
    backend, stepping policy, quantum, and window, because scenarios
    share no state.

    ``journal``/``resume`` checkpoint the run per scenario (a killed fuzz
    run resumes to the same digest), and a ``sink`` streams outcomes in
    index order as the finished prefix grows.
    """
    if count < 0:
        raise SimulationError(f"count must be >= 0, got {count}")
    if backend is None:
        backend = "inproc"
    if runner is not None and backend != "inproc":
        raise SimulationError(
            "a ShardedRunner only drives the 'inproc' backend; drop "
            f"runner= or backend={backend!r}"
        )
    backend = effective_backend(backend, count, jobs)
    if backend == "inproc":
        if runner is None:
            runner = ShardedRunner(
                stepping=stepping, quantum=quantum, window=window
            )
        executor = InprocExecutor(runner=runner)
    else:
        # make_executor rejects unknown backend names.
        executor = make_executor(
            backend, workers=jobs, chunksize=chunksize,
            remote_workers=remote_workers,
        )
    outcomes = run_jobs(
        [scenario_job(seed, index, config) for index in range(count)],
        executor=executor,
        sink=sink,
        journal=journal,
        resume=resume,
    )
    return FuzzReport(seed=seed, count=count, outcomes=tuple(outcomes))


# ----------------------------------------------------------------------
# Adaptive campaigns
# ----------------------------------------------------------------------

ADAPTIVE_CAMPAIGN_VERSION = 1
"""Folded into every campaign digest; bump on any change to the adaptive
loop's semantics (weight derivation, batch protocol, RNG namespace)."""


def adaptive_campaign_digest(
    seed: int, count: int, batch: int, config: FuzzConfig
) -> str:
    """Content hash of an adaptive campaign's inputs.

    This is what a :class:`~repro.exec.journal.CampaignJournal` header
    binds to: the full job plan is unknown upfront (batch *k*'s jobs
    depend on batch *k-1*'s outcomes), but the campaign inputs determine
    the whole run, so binding to them is binding to the plan.
    """
    return hashlib.sha256(
        repr(
            ("adaptive-fuzz", ADAPTIVE_CAMPAIGN_VERSION, seed, count, batch, config)
        ).encode()
    ).hexdigest()


@dataclass(frozen=True)
class BatchRecord:
    """One adaptive batch's ledger entry: which scenarios it ran and what
    the coverage map looked like after folding them in."""

    batch: int
    start: int
    end: int
    new_features: int
    coverage_digest: str


@dataclass(frozen=True)
class AdaptiveReport:
    """The full, digest-stable result of one adaptive fuzz campaign.

    Wraps the plain :class:`FuzzReport` (same outcomes vocabulary, same
    findings accessors) and adds the coverage ledger: the final
    :class:`~repro.analysis.coverage.CoverageMap` and one
    :class:`BatchRecord` per batch. ``digest()`` covers all of it, so
    "same digest" means the replay reproduced not just the outcomes but
    the entire adaptive trajectory — weights, batches, coverage folds.
    """

    report: FuzzReport
    coverage: CoverageMap
    batches: tuple[BatchRecord, ...]
    batch_size: int

    @property
    def findings(self) -> tuple[tuple[int, str], ...]:
        """Every finding across the campaign (see FuzzReport.findings)."""
        return self.report.findings

    @property
    def outcomes(self) -> tuple[FuzzOutcome, ...]:
        """The per-scenario outcomes, in campaign index order."""
        return self.report.outcomes

    def digest(self) -> str:
        """Content hash of the campaign; replays must reproduce it."""
        digest = hashlib.sha256()
        digest.update(
            repr(("adaptive", ADAPTIVE_CAMPAIGN_VERSION, self.batch_size)).encode()
        )
        digest.update(self.report.digest().encode())
        digest.update(self.coverage.digest().encode())
        for record in self.batches:
            digest.update(repr(record).encode())
        return digest.hexdigest()

    def summary(self) -> str:
        """A compact human-readable rendering for the CLI."""
        lines = [self.report.summary(), self.coverage.summary()]
        lines.append(
            f"batches: {len(self.batches)} of {self.batch_size} scenarios"
        )
        for record in self.batches:
            lines.append(
                f"  batch {record.batch}: scenarios "
                f"{record.start}..{record.end - 1}, "
                f"+{record.new_features} new features"
            )
        return "\n".join(lines)


def run_adaptive_fuzz(
    seed: int,
    count: int,
    config: FuzzConfig = DEFAULT_CONFIG,
    batch: int = 50,
    stepping: str = "round_robin",
    quantum: int = 512,
    window: int | None = 64,
    runner: ShardedRunner | None = None,
    backend: str | None = None,
    jobs: int = 1,
    chunksize: int | None = None,
    remote_workers: int | str | Sequence[str] | None = None,
    journal: str | Path | None = None,
    resume: bool = False,
    sink: ResultSink | None = None,
) -> AdaptiveReport:
    """A coverage-guided fuzz campaign; pure in ``(seed, count, batch,
    config)``.

    Scenarios run in fixed-size batches. Batch 0 draws under uniform
    weights (an empty coverage map); before each later batch the
    outcomes so far are folded into a
    :class:`~repro.analysis.coverage.CoverageMap` and
    :func:`~repro.analysis.coverage.derive_weights` turns it into the
    batch's :class:`~repro.analysis.coverage.AxisWeights` — unexplored
    and violation-dense regions of the scenario space get heavier
    sampling. The weights are a pure function of prior outcomes and ride
    inside each job's params, so the campaign replays byte-identically:
    same inputs (or a journal resume from any kill point) produce the
    same scenarios, outcomes, coverage digests, and
    :meth:`AdaptiveReport.digest`, on every backend and stepping policy.

    ``journal``/``resume`` checkpoint through a
    :class:`~repro.exec.journal.CampaignJournal`: restored results are
    validated against the recomputed batch jobs (hash mismatch names the
    campaign drift), and each batch's recorded coverage checkpoint is
    cross-checked against the resumed fold. A ``sink`` streams outcomes
    in campaign index order as the finished prefix grows, exactly like
    :func:`run_fuzz`.
    """
    if count < 0:
        raise SimulationError(f"count must be >= 0, got {count}")
    if batch < 1:
        raise SimulationError(f"batch must be >= 1, got {batch}")
    if resume and journal is None:
        raise SimulationError("resume=True requires a journal")
    if backend is None:
        backend = "inproc"
    if runner is not None and backend != "inproc":
        raise SimulationError(
            "a ShardedRunner only drives the 'inproc' backend; drop "
            f"runner= or backend={backend!r}"
        )
    backend = effective_backend(backend, min(batch, count), jobs)
    if backend == "inproc":
        if runner is None:
            runner = ShardedRunner(
                stepping=stepping, quantum=quantum, window=window
            )
        executor = InprocExecutor(runner=runner)
    else:
        executor = make_executor(
            backend, workers=jobs, chunksize=chunksize,
            remote_workers=remote_workers,
        )

    log = CampaignJournal(journal) if journal is not None else None
    cached: dict[int, tuple[str, object]] = {}
    checkpoints: dict[int, dict] = {}
    if log is not None:
        cached, checkpoints = log.begin(
            adaptive_campaign_digest(seed, count, batch, config),
            count,
            resume=resume,
        )

    coverage = CoverageMap()
    outcomes: list[FuzzOutcome | None] = [None] * count
    jobs_by_index: dict[int, JobSpec] = {}
    batches: list[BatchRecord] = []
    released = 0

    def release_prefix() -> None:
        nonlocal released
        if sink is None:
            return
        while released < count and outcomes[released] is not None:
            sink.emit(released, jobs_by_index[released], outcomes[released])
            released += 1

    if sink is not None:
        sink.open(count)
    try:
        number = 0
        start = 0
        while start < count:
            end = min(count, start + batch)
            weights = derive_weights(config, coverage)
            pending: list[tuple[int, JobSpec]] = []
            for index in range(start, end):
                job = scenario_job(seed, index, config, weights=weights)
                jobs_by_index[index] = job
                entry = cached.get(index)
                if entry is not None:
                    job_hash, result = entry
                    if job_hash != job_digest(job):
                        raise SimulationError(
                            f"journal {log.path}: job hash mismatch at "
                            f"index {index}; the journaled campaign "
                            "diverged from this one (seed, count, batch "
                            "size, config, or the adaptive loop changed); "
                            "delete the journal or drop --resume"
                        )
                    outcomes[index] = result
                else:
                    pending.append((index, job))

            def on_result(index: int, result: FuzzOutcome) -> None:
                outcomes[index] = result
                if log is not None:
                    log.record(index, jobs_by_index[index], result)
                release_prefix()

            release_prefix()  # journaled results are already available
            executor.submit(pending, on_result)

            missing = [
                index
                for index in range(start, end)
                if outcomes[index] is None
            ]
            if missing:
                raise SimulationError(
                    f"executor {executor.name!r} completed without "
                    f"reporting {len(missing)} job(s) "
                    f"(first: {missing[0]})"
                )

            before = len(coverage)
            for index in range(start, end):
                coverage.add_outcome(outcomes[index])
            digest = coverage.digest()
            batches.append(
                BatchRecord(
                    batch=number,
                    start=start,
                    end=end,
                    new_features=len(coverage) - before,
                    coverage_digest=digest,
                )
            )
            if log is not None:
                checkpoint = checkpoints.get(number)
                if checkpoint is not None:
                    if (
                        checkpoint.get("digest") != digest
                        or checkpoint.get("upto") != end
                    ):
                        raise SimulationError(
                            f"journal {log.path}: coverage checkpoint "
                            f"mismatch at batch {number}; the resumed "
                            "fold does not reproduce the original run "
                            "(code or config drift); delete the journal "
                            "or drop --resume"
                        )
                else:
                    log.record_coverage(number, end, digest)
            number += 1
            start = end
    finally:
        if sink is not None:
            sink.close()
        if log is not None:
            log.close()

    report = FuzzReport(
        seed=seed,
        count=count,
        outcomes=tuple(outcomes),  # type: ignore[arg-type]
    )
    return AdaptiveReport(
        report=report,
        coverage=coverage,
        batches=tuple(batches),
        batch_size=batch,
    )
