"""Quantitative metrics over simulated runs.

The paper's cost model for the Section 5 protocol: one round, O(n^2)
messages per failure detection (every process echoes the suspicion to every
process), and a quorum-size-dependent latency. These helpers extract those
quantities from a finished :class:`~repro.sim.world.World` for the E6/E10
benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.events import FailedEvent
from repro.sim.world import World


@dataclass(frozen=True)
class RunMetrics:
    """Aggregate counters for one simulated run."""

    n: int
    events: int
    app_messages: int
    protocol_messages: int
    system_messages: int
    crashes: int
    detections: int
    distinct_targets: int
    mean_quorum_size: float
    virtual_duration: float

    @property
    def modelled_messages(self) -> int:
        """Application messages — the modelled event alphabet."""
        return self.app_messages

    @property
    def messages_per_detection(self) -> float:
        """Protocol messages divided by completed detections."""
        if self.detections == 0:
            return float("nan")
        return self.protocol_messages / self.detections

    @property
    def messages_per_target(self) -> float:
        """Protocol messages per distinct detected process — the paper's
        per-failure message complexity (Theta(n^2) for Section 5)."""
        if self.distinct_targets == 0:
            return float("nan")
        return self.protocol_messages / self.distinct_targets


def collect_metrics(world: World) -> RunMetrics:
    """Summarize a finished world's trace and network counters."""
    history = world.history()
    detections = history.detected_pairs()
    quorums = world.trace.quorum_records
    mean_quorum = (
        sum(q.size for q in quorums) / len(quorums) if quorums else 0.0
    )
    return RunMetrics(
        n=world.n,
        events=len(history),
        app_messages=world.network.app_messages_sent,
        protocol_messages=world.network.protocol_messages_sent,
        system_messages=world.network.system_messages_sent,
        crashes=len(history.crashed_processes()),
        detections=len(detections),
        distinct_targets=len({target for _, target in detections}),
        mean_quorum_size=mean_quorum,
        virtual_duration=world.scheduler.now,
    )


@dataclass(frozen=True)
class DetectionLatency:
    """Latency of one failure's detection across the system."""

    target: int
    suspicion_time: float
    first_detection: float | None
    last_detection: float | None
    detectors: int

    @property
    def first_latency(self) -> float | None:
        """Suspicion to the earliest ``failed`` execution."""
        if self.first_detection is None:
            return None
        return self.first_detection - self.suspicion_time

    @property
    def last_latency(self) -> float | None:
        """Suspicion to system-wide detection (FS1 fulfilled)."""
        if self.last_detection is None:
            return None
        return self.last_detection - self.suspicion_time


def detection_latency(
    world: World, target: int, suspicion_time: float
) -> DetectionLatency:
    """Latency profile of ``target``'s detection in a finished world."""
    times = world.trace.detection_times(target)
    return DetectionLatency(
        target=target,
        suspicion_time=suspicion_time,
        first_detection=min(times.values()) if times else None,
        last_detection=max(times.values()) if times else None,
        detectors=len(times),
    )


def detections_by_detector(world: World) -> dict[int, int]:
    """How many ``failed`` events each process executed.

    Counts every executed ``failed`` event — duplicates included, so a
    malformed run that detects the same pair twice shows up here —
    streaming over the recorded events without materializing a history
    snapshot.
    """
    counts: dict[int, int] = {}
    for event in world.trace.iter_events():
        if isinstance(event, FailedEvent):
            counts[event.proc] = counts.get(event.proc, 0) + 1
    return counts
