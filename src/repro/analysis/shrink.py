"""Automatic shrinking of fuzz findings to minimal reproducing scenarios.

A raw fuzz finding is a :class:`~repro.analysis.fuzz.Scenario` with a
dozen entangled choices — most of them irrelevant to the bug. This
module minimises a finding the way hypothesis shrinks a failing example:
propose a structurally smaller candidate, re-run it through the *same*
one-shard execution path every backend uses
(:func:`~repro.analysis.fuzz.run_scenario`), and keep the candidate iff
it still reproduces the finding. The loop is greedy over a fixed pass
order with no randomness anywhere, so shrinking is deterministic: the
same scenario shrinks to the same minimal form, every time, on every
machine — the property suite pins that.

"Still reproduces" is judged on **finding kinds**
(:func:`finding_kinds`), not exact finding text: messages embed event
indices and log contents that legitimately change as the scenario
shrinks, but the *kind* of bug — which model property tripped, which
differential layer diverged — must survive. Every kind of the original
finding set must be present in the candidate's (a superset is fine: a
smaller scenario occasionally exposes more, and that is a better
reproducer, not a worse one).

The passes, in order (each restarts the sequence on success):

1. drop fault-plan chunks (ddmin-style: halves, then quarters, ...,
   then single faults);
2. drop application chatter (all, then singles);
3. drop adversary suspicion holds (all, then singles);
4. drop the partition, then the heal;
5. drop the live detector (and with it the time horizon);
6. collapse the delay model to ``("constant", (1.0,))``;
7. halve the time horizon;
8. lower the failure bound ``t``;
9. remove a process entirely (faults, chatter, holds, partition
   remapped; ``t`` and ``quorum_size`` re-clamped).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable, Iterator, Sequence

from repro.analysis.fuzz import Scenario, run_scenario
from repro.core.bounds import max_tolerable_t
from repro.errors import SimulationError

#: Attempt budget: each candidate re-run counts once. Shrinking is a
#: debugging aid, not a search — a few hundred runs of an
#: already-smallish scenario keep it interactive.
DEFAULT_MAX_ATTEMPTS = 400


def finding_kinds(findings: Iterable[str]) -> frozenset[str]:
    """Classify finding messages into stable kind labels.

    ``model:<monitor>`` for model-oracle violations;
    ``divergence:log`` / ``divergence:results`` / ``divergence:bad-pairs``
    for the three differential-oracle layers. Unrecognised messages map
    to ``other`` rather than being dropped — a finding the classifier
    does not know must still be preserved through shrinking.
    """
    kinds = set()
    for finding in findings:
        if finding.startswith("model violation: "):
            name = finding[len("model violation: "):].split(" ", 1)[0]
            kinds.add(f"model:{name}")
        elif finding.startswith("stream/batch divergence: violation logs"):
            kinds.add("divergence:log")
        elif finding.startswith("stream/batch divergence: check results"):
            kinds.add("divergence:results")
        elif finding.startswith("stream/batch divergence: bad-pair"):
            kinds.add("divergence:bad-pairs")
        else:
            kinds.add("other")
    return frozenset(kinds)


def scenario_size(scenario: Scenario) -> int:
    """The shrinker's size metric; candidates must strictly decrease it.

    Processes dominate (removing one simplifies everything downstream),
    then faults, then the adversary schedule, detector, and chatter.
    Integer by construction so comparisons are exact.
    """
    return (
        scenario.n * 8
        + len(scenario.faults) * 4
        + len(scenario.holds) * 2
        + (2 if scenario.partition is not None else 0)
        + (1 if scenario.heal_at is not None else 0)
        + (4 if scenario.detector[0] != "none" else 0)
        + (1 if scenario.horizon is not None else 0)
        + len(scenario.chatter)
        + len(scenario.delay[1])
    )


@dataclass(frozen=True)
class ShrinkResult:
    """What shrinking achieved: the minimal scenario and the path to it.

    ``steps`` is the accepted-pass log (one human-readable line per
    successful shrink); ``attempts`` counts every candidate re-run,
    accepted or not.
    """

    original: Scenario
    minimal: Scenario
    kinds: frozenset[str]
    attempts: int
    steps: tuple[str, ...]

    def summary(self) -> str:
        """A compact human-readable rendering for the CLI."""
        lines = [
            f"shrink: size {scenario_size(self.original)} -> "
            f"{scenario_size(self.minimal)} in {len(self.steps)} step(s), "
            f"{self.attempts} attempt(s)",
            f"kinds preserved: {', '.join(sorted(self.kinds))}",
        ]
        lines.extend(f"  {step}" for step in self.steps)
        lines.append(f"minimal reproducer: {self.minimal!r}")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Candidate generation (pure; no randomness anywhere)
# ----------------------------------------------------------------------


def _chunked_drops(items: tuple, make) -> Iterator[Scenario]:
    """ddmin-style deletions: halves, quarters, ..., then singles."""
    size = len(items)
    chunk = size // 2
    while chunk >= 1:
        for offset in range(0, size, chunk):
            kept = items[:offset] + items[offset + chunk:]
            if len(kept) < size:
                yield make(kept)
        chunk //= 2


def _drop_faults(scenario: Scenario) -> Iterator[Scenario]:
    if scenario.faults:
        yield from _chunked_drops(
            scenario.faults, lambda kept: replace(scenario, faults=kept)
        )


def _drop_chatter(scenario: Scenario) -> Iterator[Scenario]:
    if scenario.chatter:
        yield replace(scenario, chatter=())
        yield from _chunked_drops(
            scenario.chatter, lambda kept: replace(scenario, chatter=kept)
        )


def _drop_holds(scenario: Scenario) -> Iterator[Scenario]:
    if scenario.holds:
        yield replace(scenario, holds=())
        for index in range(len(scenario.holds)):
            kept = scenario.holds[:index] + scenario.holds[index + 1:]
            yield replace(scenario, holds=kept)


def _drop_schedule(scenario: Scenario) -> Iterator[Scenario]:
    if scenario.partition is not None:
        yield replace(scenario, partition=None)
    if scenario.heal_at is not None:
        yield replace(scenario, heal_at=None)


def _drop_detector(scenario: Scenario) -> Iterator[Scenario]:
    if scenario.detector[0] != "none":
        yield replace(scenario, detector=("none", ()), horizon=None)


def _simplify_delay(scenario: Scenario) -> Iterator[Scenario]:
    if scenario.delay != ("constant", (1.0,)):
        yield replace(scenario, delay=("constant", (1.0,)))


def _halve_horizon(scenario: Scenario) -> Iterator[Scenario]:
    # Size-neutral on its own, so piggyback a chatter trim check: the
    # size gate in the main loop requires strict decrease, and a halved
    # horizon drops chatter scheduled beyond it from mattering — but we
    # keep this purely structural: only offer it when it prunes chatter.
    if scenario.horizon is not None and scenario.horizon > 2.0:
        horizon = round(scenario.horizon / 2, 4)
        kept = tuple(c for c in scenario.chatter if c[0] <= horizon)
        if len(kept) < len(scenario.chatter):
            yield replace(scenario, horizon=horizon, chatter=kept)


def _lower_t(scenario: Scenario) -> Iterator[Scenario]:
    if scenario.t > 1:
        yield replace(scenario, t=scenario.t - 1)


def _clamp_t(protocol: str, t: int, n: int) -> int:
    if protocol in ("sfs", "transitive"):
        return max(1, min(t, max_tolerable_t(n)))
    return max(1, min(t, max(1, n // 2)))


def _remap(pid: int, removed: int) -> int:
    return pid - 1 if pid > removed else pid


def _remove_pid(scenario: Scenario, removed: int) -> Scenario | None:
    """The scenario with process ``removed`` deleted, or ``None``.

    Everything referencing the process is dropped; every higher pid
    shifts down by one; ``t`` and ``quorum_size`` re-clamp to the
    smaller system. ``None`` when ``n == 2`` (the generator's floor).
    """
    if scenario.n <= 2:
        return None
    n = scenario.n - 1
    faults = tuple(
        replace(
            fault,
            proc=_remap(fault.proc, removed),
            target=(
                None if fault.target is None
                else _remap(fault.target, removed)
            ),
        )
        for fault in scenario.faults
        if fault.proc != removed and fault.target != removed
    )
    chatter = tuple(
        (at, _remap(src, removed), _remap(dst, removed), tag)
        for at, src, dst, tag in scenario.chatter
        if src != removed and dst != removed
    )
    holds = tuple(
        (
            _remap(target, removed),
            tuple(
                sorted(_remap(p, removed) for p in shield if p != removed)
            ),
        )
        for target, shield in scenario.holds
        if target != removed
    )
    partition = scenario.partition
    if partition is not None:
        side_a = tuple(
            sorted(_remap(p, removed) for p in partition[0] if p != removed)
        )
        side_b = tuple(
            sorted(_remap(p, removed) for p in partition[1] if p != removed)
        )
        partition = (side_a, side_b) if side_a and side_b else None
    quorum_size = scenario.quorum_size
    if quorum_size is not None:
        quorum_size = min(quorum_size, n)
    return replace(
        scenario,
        n=n,
        t=_clamp_t(scenario.protocol, scenario.t, n),
        quorum_size=quorum_size,
        faults=faults,
        chatter=chatter,
        holds=holds,
        partition=partition,
    )


def _remove_processes(scenario: Scenario) -> Iterator[Scenario]:
    for removed in range(scenario.n - 1, -1, -1):
        candidate = _remove_pid(scenario, removed)
        if candidate is not None:
            yield candidate


_PASSES: tuple[tuple[str, object], ...] = (
    ("drop faults", _drop_faults),
    ("drop chatter", _drop_chatter),
    ("drop holds", _drop_holds),
    ("drop partition/heal", _drop_schedule),
    ("drop detector", _drop_detector),
    ("simplify delay", _simplify_delay),
    ("halve horizon", _halve_horizon),
    ("lower t", _lower_t),
    ("remove process", _remove_processes),
)


# ----------------------------------------------------------------------
# The shrink loop
# ----------------------------------------------------------------------


def shrink(
    scenario: Scenario,
    kinds: Sequence[str] | frozenset[str] | None = None,
    max_attempts: int = DEFAULT_MAX_ATTEMPTS,
) -> ShrinkResult:
    """Greedily minimise ``scenario`` while preserving its finding kinds.

    ``kinds`` is the contract a candidate must keep satisfying (every
    listed kind present among the candidate's finding kinds). When
    omitted it is computed by running the scenario once — which then
    must produce at least one finding, or there is nothing to preserve
    and the call raises.

    Deterministic by construction: fixed pass order, no randomness, and
    every accepted candidate strictly decreases :func:`scenario_size`,
    so the loop terminates with or without the attempt budget.
    """
    if kinds is None:
        kinds = finding_kinds(run_scenario(scenario).findings)
    target = frozenset(kinds)
    if not target:
        raise SimulationError(
            "nothing to shrink: the scenario produces no findings "
            "(pass kinds= to preserve a specific contract)"
        )
    attempts = 0
    steps: list[str] = []
    current = scenario
    seen = {repr(scenario)}

    def reproduces(candidate: Scenario) -> bool:
        nonlocal attempts
        attempts += 1
        return target <= finding_kinds(run_scenario(candidate).findings)

    improved = True
    while improved and attempts < max_attempts:
        improved = False
        for name, generate in _PASSES:
            for candidate in generate(current):
                if attempts >= max_attempts:
                    break
                key = repr(candidate)
                if key in seen:
                    continue
                seen.add(key)
                if scenario_size(candidate) >= scenario_size(current):
                    continue
                if reproduces(candidate):
                    steps.append(
                        f"{name}: size {scenario_size(current)} -> "
                        f"{scenario_size(candidate)}"
                    )
                    current = candidate
                    improved = True
                    break
            if improved:
                break
    return ShrinkResult(
        original=scenario,
        minimal=current,
        kinds=target,
        attempts=attempts,
        steps=tuple(steps),
    )
