"""Deterministic coverage signal for fuzz campaigns.

Uniform sampling spends most of a fuzz budget re-running the regions of
the scenario space it hit in the first hundred scenarios. This module
extracts a **coverage signal** from artifacts the engine already
produces — no instrumentation, no probes — and folds it into a
:class:`CoverageMap` the adaptive fuzz loop
(:func:`repro.analysis.fuzz.run_adaptive_fuzz`) uses to re-weight its
per-axis sampling distributions between batches.

The signal has three ingredient families, all derived from a
:class:`~repro.analysis.fuzz.FuzzOutcome` by pure functions:

* **scenario feature buckets** (:func:`scenario_features`) — which region
  of the configuration space the scenario occupied: topology size,
  protocol, delay family, detector, failure model, adversary schedule
  shape, fault-plan shape;
* **monitor transitions** — which dispositions the streaming property
  state machines (:mod:`repro.core.failure_models`,
  :mod:`repro.core.validate`, :mod:`repro.core.failed_before`) reached,
  exported per run by
  :meth:`~repro.analysis.monitors.MonitorSet.transition_coverage` and
  carried on the outcome;
* **near-miss signals** — violations observed (legitimate ones
  included), bucketed first-violation indices, bucketed event counts:
  the "how close to interesting did this run get" axis.

Everything is plain strings and integer counts with content-stable
``repr``, so a :class:`CoverageMap` built from the same outcomes in the
same order has the same :meth:`~CoverageMap.digest` on every backend,
chunk size, and journal resume point — the property suite pins that.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Sequence

from repro.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.fuzz import FuzzConfig, FuzzOutcome, Scenario

COVERAGE_VERSION = 1
"""Version tag folded into every CoverageMap digest; bump on any change
to the feature vocabulary, so stale digests fail loudly instead of
comparing incomparable maps."""

#: The adversary-schedule shapes the adaptive generator weights over.
SCHEDULE_SHAPES = ("none", "holds", "partition", "both")


def bucket(value: int) -> int:
    """Log2 bucket of a non-negative count: 0, 1, 2, 4, 8, 16, ...

    Coverage cares about orders of magnitude, not exact counts — two
    runs that locked a violation at events 700 and 900 explored the same
    region; bucketing keeps the feature space finite and the map stable
    under noise-free-but-large variations.
    """
    if value <= 0:
        return 0
    result = 1
    while result * 2 <= value:
        result *= 2
    return result


def _schedule_shape(scenario: "Scenario") -> str:
    if scenario.holds and scenario.partition is not None:
        return "both"
    if scenario.holds:
        return "holds"
    if scenario.partition is not None:
        return "partition"
    return "none"


def scenario_features(scenario: "Scenario") -> tuple[str, ...]:
    """The configuration-space bucket labels of one scenario.

    Axis-valued labels (``axis=value``) double as the adaptive
    generator's weight keys: :func:`derive_weights` looks these exact
    strings up in the map, so the vocabulary here and the axis values
    there must stay in lockstep.
    """
    kinds = sorted({fault.kind for fault in scenario.faults})
    return (
        f"n={scenario.n}",
        f"protocol={scenario.protocol}",
        f"t={scenario.t}",
        f"delay={scenario.delay[0]}",
        f"detector={scenario.detector[0]}",
        f"model={scenario.failure_model}",
        f"shape={_schedule_shape(scenario)}",
        f"faults={'+'.join(kinds) if kinds else 'none'}",
        f"fault-count={bucket(len(scenario.faults))}",
        f"chatter={bucket(len(scenario.chatter))}",
        f"horizon={'time' if scenario.horizon is not None else 'quiescence'}",
    )


def outcome_features(outcome: "FuzzOutcome") -> tuple[str, ...]:
    """Every coverage feature one outcome contributes, in a fixed order.

    Scenario buckets first, then the monitor-transition labels the run
    carried home, then the near-miss signals. Deterministic: a pure
    function of the outcome, which is itself a pure function of the job.
    """
    features = list(scenario_features(outcome.scenario))
    features.extend(outcome.coverage)
    for index, name in outcome.violations:
        features.append(f"viol:{name}@{bucket(index)}")
    if outcome.violations:
        features.append(f"first-viol@{bucket(outcome.violations[0][0])}")
    features.append(f"events={bucket(outcome.events)}")
    return tuple(features)


def _is_hot(outcome: "FuzzOutcome") -> bool:
    """Whether an outcome sits in a violation-dense region of the space.

    Findings obviously qualify; so do *legitimate* violations — a
    unilateral run that forms cycles is exactly the neighbourhood where
    an oracle or monitor bug would surface, so the adaptive loop leans
    toward it.
    """
    return bool(outcome.findings) or bool(outcome.violations)


class CoverageMap:
    """Counts of every coverage feature observed, with a stable digest.

    A plain ``{feature: count}`` multiset under the hood. Order of
    insertion is irrelevant to the digest (items are sorted), so the map
    is invariant under executor completion order by construction; the
    adaptive loop still folds outcomes in planned index order so the
    intermediate per-batch digests are well-defined too.
    """

    __slots__ = ("counts", "scenarios", "hot_scenarios")

    def __init__(self) -> None:
        self.counts: dict[str, int] = {}
        self.scenarios = 0
        self.hot_scenarios = 0

    # ------------------------------------------------------------------
    # Building
    # ------------------------------------------------------------------

    def add_features(self, features: Iterable[str], hot: bool = False) -> None:
        """Fold one run's feature labels in; ``hot`` marks the scenario
        as violation-dense, which doubles its axis labels under the
        ``hot:`` prefix so :func:`derive_weights` can see density, not
        just coverage."""
        self.scenarios += 1
        if hot:
            self.hot_scenarios += 1
        for feature in features:
            self.counts[feature] = self.counts.get(feature, 0) + 1
            if hot:
                key = f"hot:{feature}"
                self.counts[key] = self.counts.get(key, 0) + 1

    def add_outcome(self, outcome: "FuzzOutcome") -> None:
        """Fold one fuzz outcome into the map."""
        self.add_features(outcome_features(outcome), hot=_is_hot(outcome))

    @classmethod
    def from_outcomes(
        cls, outcomes: Sequence["FuzzOutcome"]
    ) -> "CoverageMap":
        """The map of a whole campaign, folded in the given order."""
        coverage = cls()
        for outcome in outcomes:
            coverage.add_outcome(outcome)
        return coverage

    def merge(self, other: "CoverageMap") -> "CoverageMap":
        """Fold another map's counts into this one (multiset union)."""
        for feature, count in other.counts.items():
            self.counts[feature] = self.counts.get(feature, 0) + count
        self.scenarios += other.scenarios
        self.hot_scenarios += other.hot_scenarios
        return self

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.counts)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CoverageMap):
            return NotImplemented
        return (
            self.counts == other.counts
            and self.scenarios == other.scenarios
            and self.hot_scenarios == other.hot_scenarios
        )

    def __repr__(self) -> str:
        return (
            f"CoverageMap(features={len(self.counts)}, "
            f"scenarios={self.scenarios}, hot={self.hot_scenarios})"
        )

    def count(self, feature: str) -> int:
        """How many scenarios contributed ``feature`` (0 if never seen)."""
        return self.counts.get(feature, 0)

    def items(self) -> tuple[tuple[str, int], ...]:
        """The map's contents, sorted by feature name (digest order)."""
        return tuple(sorted(self.counts.items()))

    def digest(self) -> str:
        """Content hash of the map; bit-identical across backends."""
        digest = hashlib.sha256()
        digest.update(
            repr((COVERAGE_VERSION, self.scenarios, self.hot_scenarios)).encode()
        )
        for item in self.items():
            digest.update(repr(item).encode())
        return digest.hexdigest()

    def summary(self, top: int = 8) -> str:
        """A compact human-readable rendering for the CLI."""
        rarest = sorted(
            (
                (count, feature)
                for feature, count in self.counts.items()
                if not feature.startswith("hot:")
            ),
        )[:top]
        lines = [
            f"coverage: {len(self.counts)} features over "
            f"{self.scenarios} scenarios ({self.hot_scenarios} "
            "violation-dense)",
        ]
        if rarest:
            lines.append(
                "rarest: "
                + ", ".join(f"{feature}×{count}" for count, feature in rarest)
            )
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Adaptive re-weighting
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class AxisWeights:
    """Integer sampling weights for every adaptive generation axis.

    Weights are integers on purpose: no float repr drift, no platform
    rounding — an :class:`AxisWeights` has a content-stable ``repr`` and
    rides inside the adaptive :class:`~repro.exec.job.JobSpec` params,
    making every adaptive job (like every uniform one) its own
    reproducer. Each field is a tuple of ``(value, weight)`` pairs in
    the axis's canonical order; weights are all >= 1, so no region of
    the configured space is ever starved entirely.
    """

    ns: tuple[tuple[int, int], ...]
    protocols: tuple[tuple[str, int], ...]
    delays: tuple[tuple[str, int], ...]
    detectors: tuple[tuple[str, int], ...]
    shapes: tuple[tuple[str, int], ...]


#: Weight granted to a completely unexplored axis value.
EXPLORE_WEIGHT = 8
#: Extra weight per violation-dense hit on an axis value (capped).
HOT_WEIGHT = 4
#: Cap on the hot-hit count that earns extra weight.
HOT_CAP = 8


def _axis_weight(seen: int, hot: int) -> int:
    """One axis value's weight from its coverage and violation density.

    Unexplored values get :data:`EXPLORE_WEIGHT`; explored ones decay
    toward 1 as their count grows; violation-dense values earn a bonus
    proportional to their (capped) hot-hit count. All integer
    arithmetic — bit-identical everywhere.
    """
    base = EXPLORE_WEIGHT if seen == 0 else max(1, EXPLORE_WEIGHT // (1 + seen))
    return base + HOT_WEIGHT * min(hot, HOT_CAP)


def _axis(
    coverage: CoverageMap, axis: str, values: Iterable[object]
) -> tuple[tuple[object, int], ...]:
    pairs = []
    for value in values:
        feature = f"{axis}={value}"
        pairs.append(
            (
                value,
                _axis_weight(
                    coverage.count(feature),
                    coverage.count(f"hot:{feature}"),
                ),
            )
        )
    return tuple(pairs)


def derive_weights(config: "FuzzConfig", coverage: CoverageMap) -> AxisWeights:
    """The adaptive sampling weights implied by a coverage map.

    A pure function of ``(config, coverage)`` — the adaptive campaign's
    determinism rests on this: batch *k*'s weights derive from the
    coverage of batches ``0..k-1`` and nothing else, so replaying the
    outcomes replays the weights, the jobs, and the report, byte for
    byte. An empty map yields uniform weights (every value unexplored).
    """
    return AxisWeights(
        ns=_axis(coverage, "n", range(config.min_n, config.max_n + 1)),
        protocols=_axis(coverage, "protocol", config.protocols),
        delays=_axis(coverage, "delay", config.delays),
        detectors=_axis(coverage, "detector", config.detectors),
        shapes=_axis(coverage, "shape", SCHEDULE_SHAPES),
    )


def weighted_choice(rng, pairs: Sequence[tuple[object, int]]):
    """Draw one value from integer-weighted pairs, deterministically.

    Uses a single ``rng.randrange(total)`` draw and a cumulative walk —
    stable across platforms and Python versions (no float arithmetic,
    no ``random.choices`` implementation detail).
    """
    total = sum(weight for _, weight in pairs)
    if total <= 0:
        raise SimulationError("weighted_choice needs a positive total weight")
    point = rng.randrange(total)
    acc = 0
    for value, weight in pairs:
        acc += weight
        if point < acc:
            return value
    raise AssertionError("unreachable: cumulative walk exhausted")
