"""ASCII table rendering for experiment rows.

Benchmarks print their tables through these helpers so the console output
(and ``bench_output.txt``) reads like the tables in ``EXPERIMENTS.md``.
"""

from __future__ import annotations

from dataclasses import fields, is_dataclass
from typing import Any, Iterable, Sequence


def _render_cell(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if value is None:
        return "-"
    return str(value)


def format_table(headers: Sequence[str], rows: Iterable[Sequence[Any]]) -> str:
    """Render a fixed-width ASCII table."""
    rendered = [[_render_cell(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    header = " | ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header)
    lines.append("-+-".join("-" * w for w in widths))
    for row in rendered:
        lines.append(
            " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
        )
    return "\n".join(lines)


def dataclass_table(rows: Sequence[Any], columns: Sequence[str] | None = None) -> str:
    """Render a list of dataclass rows (optionally a column subset)."""
    if not rows:
        return "(no rows)"
    first = rows[0]
    if not is_dataclass(first):
        raise TypeError("dataclass_table expects dataclass instances")
    names = columns or [f.name for f in fields(first)]
    table_rows = [[getattr(row, name) for name in names] for row in rows]
    return format_table(names, table_rows)


def print_table(title: str, rows: Sequence[Any], columns: Sequence[str] | None = None) -> None:
    """Print a titled dataclass table (used by benches and examples)."""
    print(f"\n== {title} ==")
    print(dataclass_table(rows, columns))
