"""One-call conformance analysis of a recorded run.

:func:`analyze` bundles every check the paper defines — well-formedness,
FS1/FS2, sFS2a-d, Conditions 1-3, failed-before acyclicity, the Witness
Property, and the Theorem 5 witness construction — into a single
:class:`ConformanceReport` that tests, benchmarks, and examples can print
or assert on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.core.failed_before import find_cycle
from repro.core.failure_models import (
    CheckResult,
    check_fs1,
    check_fs2,
    check_necessary_conditions,
    check_sfs2a,
    check_sfs2b,
    check_sfs2c,
    check_sfs2d,
)
from repro.core.history import History
from repro.core.indistinguishability import (
    bad_pairs,
    ensure_crashes,
    fail_stop_witness,
    verify_witness,
)
from repro.core.quorum import (
    QuorumRecord,
    t_wise_intersecting,
    witness_property,
)
from repro.core.validate import validate_history
from repro.errors import CannotRearrangeError


@dataclass(frozen=True)
class ConformanceReport:
    """Everything the paper lets us say about one run."""

    valid: bool
    fs1: CheckResult
    fs2: CheckResult
    sfs2a: CheckResult
    sfs2b: CheckResult
    sfs2c: CheckResult
    sfs2d: CheckResult
    conditions: CheckResult
    bad_pair_count: int
    cycle: tuple[tuple[int, int], ...] | None
    witness_exists: bool
    witness_verified: bool
    global_witness_property: bool | None
    t_wise_witness_property: bool | None
    problems: tuple[str, ...] = field(default_factory=tuple)

    @property
    def is_fail_stop(self) -> bool:
        """Whether the run already satisfies FS (FS1 ^ FS2)."""
        return self.fs1.ok and self.fs2.ok

    @property
    def is_simulated_fail_stop(self) -> bool:
        """Whether the run satisfies sFS (FS1 ^ sFS2a-d)."""
        return (
            self.fs1.ok
            and self.sfs2a.ok
            and self.sfs2b.ok
            and self.sfs2c.ok
            and self.sfs2d.ok
        )

    @property
    def indistinguishable_from_fail_stop(self) -> bool:
        """Whether a verified FS witness run exists (Definition 4)."""
        return self.witness_exists and self.witness_verified

    def summary(self) -> str:
        """A compact multi-line human-readable report."""
        lines = [
            f"valid history:        {self.valid}",
            f"FS1 (completeness):   {self.fs1.ok}",
            f"FS2 (no false det.):  {self.fs2.ok}",
            f"sFS2a (eventual crash): {self.sfs2a.ok}",
            f"sFS2b (acyclic f-b):  {self.sfs2b.ok}",
            f"sFS2c (no self-det.): {self.sfs2c.ok}",
            f"sFS2d (propagation):  {self.sfs2d.ok}",
            f"Conditions 1-3:       {self.conditions.ok}",
            f"bad pairs:            {self.bad_pair_count}",
            f"failed-before cycle:  {self.cycle}",
            f"FS witness exists:    {self.witness_exists}"
            f" (verified: {self.witness_verified})",
        ]
        if self.global_witness_property is not None:
            lines.append(
                f"witness property:     global={self.global_witness_property} "
                f"t-wise={self.t_wise_witness_property}"
            )
        for problem in self.problems:
            lines.append(f"  ! {problem}")
        return "\n".join(lines)


def analyze(
    history: History,
    quorums: Sequence[QuorumRecord] | None = None,
    t: int | None = None,
    complete: bool = True,
    pending_ok: bool = False,
) -> ConformanceReport:
    """Run the full battery of checks against a recorded history.

    Args:
        history: the run to judge.
        quorums: quorum records from the trace, for Witness Property
            checks (skipped when None).
        t: failure bound for the t-wise witness check.
        complete: apply :func:`ensure_crashes` first (finite-prefix
            completion under the sFS2a obligation).
        pending_ok: treat unresolved liveness obligations as non-fatal.
    """
    judged = ensure_crashes(history) if complete else history
    validation_problems = list(validate_history(judged))
    problems = list(validation_problems)

    witness_exists = False
    witness_verified = False
    try:
        witness = fail_stop_witness(judged)
        witness_exists = True
        witness_problems = verify_witness(judged, witness)
        witness_verified = not witness_problems
        problems.extend(witness_problems)
    except CannotRearrangeError:
        pass

    global_w: bool | None = None
    t_wise_w: bool | None = None
    if quorums is not None:
        global_w = witness_property(list(quorums))
        if t is not None:
            t_wise_w = t_wise_intersecting(list(quorums), t)

    cycle = find_cycle(judged)
    return ConformanceReport(
        valid=not validation_problems,
        fs1=check_fs1(judged, pending_ok),
        fs2=check_fs2(judged),
        sfs2a=check_sfs2a(judged, pending_ok),
        sfs2b=check_sfs2b(judged),
        sfs2c=check_sfs2c(judged),
        sfs2d=check_sfs2d(judged),
        conditions=check_necessary_conditions(judged, pending_ok),
        bad_pair_count=len(bad_pairs(judged)),
        cycle=tuple(cycle) if cycle else None,
        witness_exists=witness_exists,
        witness_verified=witness_verified,
        global_witness_property=global_w,
        t_wise_witness_property=t_wise_w,
        problems=tuple(problems),
    )
