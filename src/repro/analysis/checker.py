"""One-call conformance analysis of a recorded run.

:func:`analyze` bundles every check the paper defines — well-formedness,
FS1/FS2, sFS2a-d, Conditions 1-3, failed-before acyclicity, the Witness
Property, and the Theorem 5 witness construction — into a single
:class:`ConformanceReport` that tests, benchmarks, and examples can print
or assert on.

Since the streaming-monitor refactor, ``analyze()`` *is* a replay: the
(completed) history is driven event-by-event through a
:class:`~repro.analysis.monitors.MonitorSet`, and the per-property
results are read off the monitors — the same objects a live
``World.attach_monitor`` feeds during simulation. Only the whole-history
constructions (the Theorem 5 witness and the quorum Witness Property)
remain batch computations, assembled by :func:`report_from_monitors`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.analysis.monitors import MonitorSet
from repro.core.failure_models import CheckResult
from repro.core.history import History
from repro.core.indistinguishability import (
    ensure_crashes,
    fail_stop_witness,
    verify_witness,
)
from repro.core.quorum import (
    QuorumRecord,
    t_wise_intersecting,
    witness_property,
)
from repro.errors import CannotRearrangeError


@dataclass(frozen=True)
class ConformanceReport:
    """Everything the paper lets us say about one run."""

    valid: bool
    fs1: CheckResult
    fs2: CheckResult
    sfs2a: CheckResult
    sfs2b: CheckResult
    sfs2c: CheckResult
    sfs2d: CheckResult
    conditions: CheckResult
    bad_pair_count: int
    cycle: tuple[tuple[int, int], ...] | None
    witness_exists: bool
    witness_verified: bool
    global_witness_property: bool | None
    t_wise_witness_property: bool | None
    problems: tuple[str, ...] = field(default_factory=tuple)

    @property
    def is_fail_stop(self) -> bool:
        """Whether the run already satisfies FS (FS1 ^ FS2)."""
        return self.fs1.ok and self.fs2.ok

    @property
    def is_simulated_fail_stop(self) -> bool:
        """Whether the run satisfies sFS (FS1 ^ sFS2a-d)."""
        return (
            self.fs1.ok
            and self.sfs2a.ok
            and self.sfs2b.ok
            and self.sfs2c.ok
            and self.sfs2d.ok
        )

    @property
    def indistinguishable_from_fail_stop(self) -> bool:
        """Whether a verified FS witness run exists (Definition 4)."""
        return self.witness_exists and self.witness_verified

    def summary(self) -> str:
        """A compact multi-line human-readable report."""
        lines = [
            f"valid history:        {self.valid}",
            f"FS1 (completeness):   {self.fs1.ok}",
            f"FS2 (no false det.):  {self.fs2.ok}",
            f"sFS2a (eventual crash): {self.sfs2a.ok}",
            f"sFS2b (acyclic f-b):  {self.sfs2b.ok}",
            f"sFS2c (no self-det.): {self.sfs2c.ok}",
            f"sFS2d (propagation):  {self.sfs2d.ok}",
            f"Conditions 1-3:       {self.conditions.ok}",
            f"bad pairs:            {self.bad_pair_count}",
            f"failed-before cycle:  {self.cycle}",
            f"FS witness exists:    {self.witness_exists}"
            f" (verified: {self.witness_verified})",
        ]
        if self.global_witness_property is not None:
            lines.append(
                f"witness property:     global={self.global_witness_property} "
                f"t-wise={self.t_wise_witness_property}"
            )
        for problem in self.problems:
            lines.append(f"  ! {problem}")
        return "\n".join(lines)


def analyze(
    history: History,
    quorums: Sequence[QuorumRecord] | None = None,
    t: int | None = None,
    complete: bool = True,
    pending_ok: bool = False,
) -> ConformanceReport:
    """Run the full battery of checks against a recorded history.

    Args:
        history: the run to judge.
        quorums: quorum records from the trace, for Witness Property
            checks (skipped when None).
        t: failure bound for the t-wise witness check.
        complete: apply :func:`ensure_crashes` first (finite-prefix
            completion under the sFS2a obligation).
        pending_ok: treat unresolved liveness obligations as non-fatal.
    """
    judged = ensure_crashes(history) if complete else history
    monitors = MonitorSet(judged.n, pending_ok=pending_ok)
    monitors.replay(judged)
    return report_from_monitors(monitors, judged, quorums=quorums, t=t)


def report_from_monitors(
    monitors: MonitorSet,
    history: History,
    quorums: Sequence[QuorumRecord] | None = None,
    t: int | None = None,
) -> ConformanceReport:
    """Assemble a :class:`ConformanceReport` from streamed monitors.

    ``monitors`` must have observed exactly the events of ``history`` (a
    live ``World.attach_monitor`` set after the run, or a fresh
    :meth:`~repro.analysis.monitors.MonitorSet.replay`). The history is
    still needed for the whole-run constructions no monitor can do
    incrementally: the Theorem 5 witness and its verification.
    """
    validation_problems = monitors.validity.violations
    problems = list(validation_problems)

    witness_exists = False
    witness_verified = False
    try:
        witness = fail_stop_witness(history)
        witness_exists = True
        witness_problems = verify_witness(history, witness)
        witness_verified = not witness_problems
        problems.extend(witness_problems)
    except CannotRearrangeError:
        pass

    global_w: bool | None = None
    t_wise_w: bool | None = None
    if quorums is not None:
        global_w = witness_property(list(quorums))
        if t is not None:
            t_wise_w = t_wise_intersecting(list(quorums), t)

    return ConformanceReport(
        valid=not validation_problems,
        fs1=monitors.fs1.result(),
        fs2=monitors.fs2.result(),
        sfs2a=monitors.sfs2a.result(),
        sfs2b=monitors.sfs2b.result(),
        sfs2c=monitors.sfs2c.result(),
        sfs2d=monitors.sfs2d.result(),
        conditions=monitors.conditions.result(),
        bad_pair_count=monitors.bad_pairs.count,
        cycle=monitors.cycle,
        witness_exists=witness_exists,
        witness_verified=witness_verified,
        global_witness_property=global_w,
        t_wise_witness_property=t_wise_w,
        problems=tuple(problems),
    )
