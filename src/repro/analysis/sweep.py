"""Deterministic multi-seed / multi-config experiment sweeps.

Related failure-detector studies chart behaviour across hundreds of seeds
and cluster sizes; this module gives the reproduction the same capability
without giving up its core guarantee, determinism. A sweep is *planned*
as an explicit list of :class:`SweepCase` tasks — one per (parameter
combination, seed) — and each case is executed independently with all
randomness derived from its own seed. Because cases share no state,
execution order cannot affect results, so every backend of the unified
execution layer (:mod:`repro.exec`) — the serial loop, the
``multiprocessing`` pool, and the in-process ``inproc`` executor that
recycles scheduler storage between cases — produces **bit-identical
rows**: same cases, same per-case results, same collection order.

This module is a thin *planner* over :mod:`repro.exec`: it expands the
request into cases, converts each case to a frozen
:class:`~repro.exec.JobSpec`, and hands the plan to
:func:`repro.exec.run_jobs` — which also supplies JSONL
checkpoint/resume (``journal=``/``resume=``: a killed sweep restarts
where it stopped, with a final digest bit-identical to an uninterrupted
run's) and live result streaming (``sink=``: rows delivered in planned
order as their prefix completes).

Quick example::

    from repro.analysis.sweep import run_sweep, rows_digest

    rows = run_sweep("e1", seeds=range(20), jobs=4)
    print(rows_digest(rows))  # equal to the jobs=1 digest, always

The CLI front-end is ``python -m repro sweep`` (see :mod:`repro.__main__`);
``examples/large_cluster_sweep.py`` drives an n>=64 configuration sweep
and ``benchmarks/bench_e12_sweep_scale.py`` times the executors and
asserts their equivalence (``benchmarks/bench_e16_exec_layer.py`` times
the journal and streaming machinery).

Performance model (methodology and measured numbers: docs/performance.md):
planning is O(cases); execution is embarrassingly parallel with
near-linear speedup until the per-case cost (one full simulated run,
itself linear in events thanks to the O(1)-accounting scheduler, batched
delivery bursts, and incremental trace recording) drops below
per-process pickling overhead — tune ``chunksize`` for very cheap cases.
Each worker run records its trace through
:class:`~repro.core.history.HistoryBuilder`, so long-run cases stay
linear in trace length rather than quadratic.
"""

from __future__ import annotations

import hashlib
import itertools
from dataclasses import dataclass, fields, is_dataclass
from pathlib import Path
from typing import Any, Callable, Mapping, Sequence

import inspect

import repro.analysis.extensions  # noqa: F401  (registers e11/a1/e14)
from repro.analysis.experiments import SEEDED_DRIVERS
from repro.analysis.report import format_table
from repro.errors import SimulationError
from repro.exec import (
    EXEC_BACKENDS,
    JobSpec,
    ResultSink,
    effective_backend,
    make_executor,
    run_jobs,
)

SWEEP_JOB_KIND = "repro.analysis.sweep:run_sweep_job"
"""Entrypoint string sweep jobs carry (see :mod:`repro.exec.job`)."""


def _drivers() -> dict[str, Callable[..., Any]]:
    # All drivers — core E1-E10 and the extension set — self-register
    # through the @seeded_driver decorator; importing the modules above
    # is what populates the registry.
    return dict(SEEDED_DRIVERS)


def available_experiments() -> list[str]:
    """Sweepable experiment ids (drivers that take a ``seeds`` argument)."""
    return sorted(_drivers())


def sweep_driver(experiment: str) -> Callable[..., Any]:
    """The registered driver callable for a sweepable experiment id."""
    try:
        return _drivers()[experiment.lower()]
    except KeyError:
        raise SimulationError(
            f"unknown sweepable experiment {experiment!r}; choose from "
            f"{', '.join(available_experiments())}"
        ) from None


@dataclass(frozen=True)
class SweepCase:
    """One unit of sweep work: a single experiment run on a single seed.

    ``params`` is an insertion-ordered tuple of ``(name, value)`` keyword
    arguments forwarded to the experiment driver (fixed parameters first,
    then the grid combination). ``early_stop`` asks the driver to abort
    the case at the first streaming-monitor violation (only drivers that
    accept an ``early_stop`` keyword support it; others are rejected at
    execution time).
    """

    experiment: str
    seed: int
    params: tuple[tuple[str, Any], ...] = ()
    early_stop: bool = False


@dataclass(frozen=True)
class SweepRow:
    """One experiment row produced by one case, tagged with its origin."""

    experiment: str
    seed: int
    params: tuple[tuple[str, Any], ...]
    row: Any


def plan_cases(
    experiment: str,
    seeds: Sequence[int],
    params: Mapping[str, Any] | None = None,
    grid: Mapping[str, Sequence[Any]] | None = None,
    early_stop: bool = False,
) -> list[SweepCase]:
    """Expand a sweep request into an explicit, ordered case list.

    Order is grid-major then seed-minor and depends only on the inputs,
    never on the executor — it *is* the row order of the final result.
    """
    experiment = experiment.lower()
    driver = sweep_driver(experiment)  # validate the id before planning
    grid = grid or {}
    fixed_keys = set(params or {})
    if "seeds" in fixed_keys or "seeds" in grid:
        raise SimulationError(
            "'seeds' is supplied by the sweep runner itself "
            "(one case per seed); pass seeds=... to run_sweep/plan_cases"
        )
    if "early_stop" in fixed_keys or "early_stop" in grid:
        raise SimulationError(
            "'early_stop' is a sweep execution mode, not a driver "
            "parameter; pass early_stop=True to run_sweep/plan_cases"
        )
    if early_stop and not _supports_early_stop(driver):
        raise SimulationError(
            f"experiment {experiment!r} does not support early_stop (its "
            "driver takes no 'early_stop' keyword); run it in full mode"
        )
    overlap = sorted(fixed_keys & set(grid))
    if overlap:
        raise SimulationError(
            f"parameter(s) {', '.join(overlap)} appear in both params and "
            "grid; each name may be fixed or swept, not both"
        )
    fixed = tuple((params or {}).items())
    combos = [
        tuple(zip(grid.keys(), values))
        for values in itertools.product(*grid.values())
    ] or [()]
    return [
        SweepCase(
            experiment=experiment,
            seed=seed,
            params=fixed + combo,
            early_stop=early_stop,
        )
        for combo in combos
        for seed in seeds
    ]


def _supports_early_stop(driver: Callable[..., Any]) -> bool:
    """Whether a driver accepts the ``early_stop`` keyword."""
    return "early_stop" in inspect.signature(driver).parameters


def run_case(case: SweepCase) -> list[SweepRow]:
    """Execute one case; all nondeterminism flows from ``case.seed``.

    With ``case.early_stop`` the driver is asked to abort the run at the
    first streaming-monitor violation and tag its row with the violating
    event index (drivers without an ``early_stop`` keyword are rejected).
    """
    driver = sweep_driver(case.experiment)
    kwargs = dict(case.params)
    if case.early_stop:
        if not _supports_early_stop(driver):
            raise SimulationError(
                f"experiment {case.experiment!r} does not support "
                "early_stop (its driver takes no 'early_stop' keyword)"
            )
        kwargs["early_stop"] = True
    result = driver(seeds=(case.seed,), **kwargs)
    rows = result if isinstance(result, list) else [result]
    return [
        SweepRow(
            experiment=case.experiment,
            seed=case.seed,
            params=case.params,
            row=row,
        )
        for row in rows
    ]


# ----------------------------------------------------------------------
# JobSpec bridge — sweep cases as execution-layer jobs
# ----------------------------------------------------------------------


def case_to_job(case: SweepCase) -> JobSpec:
    """The case's frozen job form: pure data, runnable anywhere.

    ``early_stop`` travels in ``params`` under its own name — safe
    because :func:`plan_cases` rejects ``early_stop`` as a user-supplied
    driver parameter, so the key can only come from the planner.
    """
    params = case.params
    if case.early_stop:
        params = params + (("early_stop", True),)
    return JobSpec(
        kind=SWEEP_JOB_KIND,
        spec_id=case.experiment,
        seed=case.seed,
        params=params,
    )


def job_to_case(job: JobSpec) -> SweepCase:
    """Inverse of :func:`case_to_job`."""
    return SweepCase(
        experiment=job.spec_id,
        seed=job.seed,
        params=tuple(p for p in job.params if p[0] != "early_stop"),
        early_stop=bool(job.param("early_stop", False)),
    )


def run_sweep_job(job: JobSpec) -> list[SweepRow]:
    """Execution-layer entrypoint: run one sweep case from its job form.

    Must stay a module-level function: the parallel executor ships jobs
    to worker processes by pickling and resolves this by name there.
    """
    return run_case(job_to_case(job))


SWEEP_BACKENDS = EXEC_BACKENDS
"""Valid ``backend`` arguments for :func:`run_sweep` — the execution
layer's registered executors, by reference (one registry, no copies;
see :mod:`repro.exec.executors`)."""


def run_sweep(
    experiment: str,
    seeds: Sequence[int],
    params: Mapping[str, Any] | None = None,
    grid: Mapping[str, Sequence[Any]] | None = None,
    jobs: int = 1,
    chunksize: int | None = None,
    early_stop: bool = False,
    backend: str | None = None,
    remote_workers: int | str | Sequence[str] | None = None,
    journal: str | Path | None = None,
    resume: bool = False,
    sink: ResultSink | None = None,
) -> list[SweepRow]:
    """Run a sweep on one of four bit-identical execution backends.

    * ``"serial"`` — one case after another in this process.
    * ``"parallel"`` — a ``multiprocessing`` pool of ``jobs`` workers.
    * ``"inproc"`` — one case after another in this process, with
      scheduler heap storage recycled between cases via the multi-world
      engine's pool; preferable to ``parallel`` whenever per-case cost is
      small enough that process spawn/pickle overhead dominates (measured
      crossover: ``benchmarks/bench_e15_multiworld.py``).
    * ``"remote"`` — multi-host dispatch to worker processes configured
      by ``remote_workers`` (see :mod:`repro.exec.remote`); the
      coordinator watches the fleet with the repo's own failure
      detectors and reassigns a failed worker's unfinished cases.

    ``backend=None`` (the default) keeps the historical behaviour:
    ``parallel`` when ``jobs > 1``, else ``serial``.

    ``journal``/``resume`` give the sweep checkpoint/restart: every
    finished case is recorded to the JSONL journal as it lands, and a
    resumed run re-executes only unjournaled cases — the returned rows
    (and their digest) are bit-identical to an uninterrupted run's. A
    ``sink`` receives per-case row lists in planned order as the
    finished prefix grows (see :mod:`repro.exec.sink`).

    Rows come back in planned-case order regardless of backend, and
    every backend produces **bit-identical rows** — in full mode and in
    ``early_stop`` mode alike (a case's abort point is a pure function of
    its seed, never of the executor).
    """
    if backend is None:
        backend = "parallel" if jobs > 1 else "serial"
    cases = plan_cases(
        experiment, seeds, params=params, grid=grid, early_stop=early_stop
    )
    # make_executor rejects unknown backend names; effective_backend
    # keeps the historical jobs<=1 fast path under an explicit
    # backend="parallel".
    executor = make_executor(
        effective_backend(backend, len(cases), jobs),
        workers=jobs,
        chunksize=chunksize,
        remote_workers=remote_workers,
    )
    per_case = run_jobs(
        [case_to_job(case) for case in cases],
        executor=executor,
        sink=sink,
        journal=journal,
        resume=resume,
    )
    return [row for rows in per_case for row in rows]


def rows_digest(rows: Sequence[SweepRow]) -> str:
    """A stable content hash of a sweep result (order-sensitive).

    Two sweeps agree bit-for-bit iff their digests match; the benchmark
    and the CLI print it so serial/parallel equivalence is checkable from
    the console output alone.

    Contract: every registered driver returns frozen dataclass rows whose
    fields are plain values (ints, floats, strings, tuples), so ``repr``
    is a pure function of the row's contents. A driver row with an
    identity-based or otherwise nondeterministic repr would break digest
    stability across processes.
    """
    digest = hashlib.sha256()
    for row in rows:
        digest.update(
            repr((row.experiment, row.seed, row.params, row.row)).encode()
        )
    return digest.hexdigest()


def sweep_table(rows: Sequence[SweepRow]) -> str:
    """Render sweep rows as a fixed-width ASCII table.

    Inner column names are the *union* of the field names across all rows,
    not just the first row's — so a sweep whose driver returns different
    dataclasses for different parameter combinations still renders
    aligned, with ``-`` in the cells a row does not define. The union is
    ordered by **first appearance** (row order, then dataclass field
    order within each row), never by set iteration order, so the same
    rows always render the same table. Non-dataclass rows land in a
    trailing ``row`` column.
    """
    if not rows:
        return "(no rows)"
    param_names: list[str] = []
    for row in rows:
        for name, _ in row.params:
            if name not in param_names:
                param_names.append(name)
    inner_names: list[str] = []
    any_plain = False
    for row in rows:
        if is_dataclass(row.row) and not isinstance(row.row, type):
            for f in fields(row.row):
                if f.name not in inner_names:
                    inner_names.append(f.name)
        else:
            any_plain = True
    if any_plain and "row" not in inner_names:
        inner_names.append("row")
    headers = ["seed", *param_names, *inner_names]
    table_rows = []
    for row in rows:
        values = dict(row.params)
        inner = row.row
        if is_dataclass(inner) and not isinstance(inner, type):
            inner_cells = [getattr(inner, name, "-") for name in inner_names]
        else:
            inner_cells = [
                inner if name == "row" else "-" for name in inner_names
            ]
        table_rows.append(
            [row.seed]
            + [values.get(name, "-") for name in param_names]
            + inner_cells
        )
    return format_table(headers, table_rows)
