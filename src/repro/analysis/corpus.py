"""The replayable regression corpus: shrunk findings as test fixtures.

Every interesting scenario the fuzzer (or an oracle self-test) ever
surfaces can be frozen as a **corpus entry**: the minimal reproducing
:class:`~repro.analysis.fuzz.Scenario` plus the finding kinds it must
keep producing. Entries serialise to plain JSON — no pickle, reviewable
in a diff, stable under refactors that keep the scenario vocabulary —
and live under ``tests/corpus/``, where a parametrized test replays
every entry through the same one-shard execution path as the fuzzer
(:func:`~repro.analysis.fuzz.run_scenario`) and asserts the expected
kinds are still found.

The corpus is how a fuzz finding becomes a permanent regression test:
``python -m repro fuzz --shrink --corpus tests/corpus`` shrinks each
finding and writes it here; from then on every CI run replays it.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.analysis.fuzz import Scenario, run_scenario
from repro.analysis.shrink import finding_kinds
from repro.errors import SimulationError
from repro.sim.failures import Fault

CORPUS_VERSION = 1


def scenario_to_jsonable(scenario: Scenario) -> dict[str, Any]:
    """A scenario as plain JSON types (lossless; see the inverse)."""
    return {
        "index": scenario.index,
        "seed": scenario.seed,
        "n": scenario.n,
        "protocol": scenario.protocol,
        "t": scenario.t,
        "quorum_size": scenario.quorum_size,
        "delay": [scenario.delay[0], list(scenario.delay[1])],
        "detector": [scenario.detector[0], list(scenario.detector[1])],
        "faults": [
            {
                "kind": fault.kind,
                "at": fault.at,
                "proc": fault.proc,
                "target": fault.target,
            }
            for fault in scenario.faults
        ],
        "holds": [
            [target, list(shield)] for target, shield in scenario.holds
        ],
        "partition": (
            None
            if scenario.partition is None
            else [list(scenario.partition[0]), list(scenario.partition[1])]
        ),
        "heal_at": scenario.heal_at,
        "chatter": [list(entry) for entry in scenario.chatter],
        "horizon": scenario.horizon,
        "failure_model": scenario.failure_model,
    }


def scenario_from_jsonable(data: dict[str, Any]) -> Scenario:
    """Rebuild a scenario from :func:`scenario_to_jsonable` output."""
    return Scenario(
        index=data["index"],
        seed=data["seed"],
        n=data["n"],
        protocol=data["protocol"],
        t=data["t"],
        quorum_size=data["quorum_size"],
        delay=(data["delay"][0], tuple(data["delay"][1])),
        detector=(data["detector"][0], tuple(data["detector"][1])),
        faults=tuple(
            Fault(
                kind=fault["kind"],
                at=fault["at"],
                proc=fault["proc"],
                target=fault["target"],
            )
            for fault in data["faults"]
        ),
        holds=tuple(
            (target, tuple(shield)) for target, shield in data["holds"]
        ),
        partition=(
            None
            if data["partition"] is None
            else (
                tuple(data["partition"][0]),
                tuple(data["partition"][1]),
            )
        ),
        heal_at=data["heal_at"],
        chatter=tuple(tuple(entry) for entry in data["chatter"]),
        horizon=data["horizon"],
        failure_model=data["failure_model"],
    )


@dataclass(frozen=True)
class CorpusEntry:
    """One regression fixture: a scenario and its preserved contract.

    ``expect_kinds`` are :func:`~repro.analysis.shrink.finding_kinds`
    labels the replay must (at least) produce; ``note`` records where the
    entry came from, for the human reading the corpus diff.
    """

    name: str
    scenario: Scenario
    expect_kinds: tuple[str, ...]
    note: str = ""


def entry_to_jsonable(entry: CorpusEntry) -> dict[str, Any]:
    """A corpus entry as plain JSON types."""
    return {
        "version": CORPUS_VERSION,
        "name": entry.name,
        "note": entry.note,
        "expect_kinds": list(entry.expect_kinds),
        "scenario": scenario_to_jsonable(entry.scenario),
    }


def entry_from_jsonable(data: dict[str, Any]) -> CorpusEntry:
    """Rebuild a corpus entry; raises on an unsupported version."""
    if data.get("version") != CORPUS_VERSION:
        raise SimulationError(
            f"corpus entry {data.get('name', '?')!r}: unsupported "
            f"version {data.get('version')!r}"
        )
    return CorpusEntry(
        name=data["name"],
        scenario=scenario_from_jsonable(data["scenario"]),
        expect_kinds=tuple(data["expect_kinds"]),
        note=data.get("note", ""),
    )


def save_entry(directory: str | Path, entry: CorpusEntry) -> Path:
    """Write one entry as ``<directory>/<name>.json``; returns the path."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{entry.name}.json"
    path.write_text(
        json.dumps(entry_to_jsonable(entry), indent=2, sort_keys=True) + "\n"
    )
    return path


def load_corpus(directory: str | Path) -> tuple[CorpusEntry, ...]:
    """Every entry under a corpus directory, sorted by name.

    An empty or missing directory is an empty corpus, not an error — a
    fresh checkout simply has nothing to replay yet.
    """
    directory = Path(directory)
    if not directory.is_dir():
        return ()
    entries = []
    for path in sorted(directory.glob("*.json")):
        try:
            data = json.loads(path.read_text())
        except json.JSONDecodeError as exc:
            raise SimulationError(
                f"corpus entry {path} is not valid JSON: {exc}"
            ) from None
        entries.append(entry_from_jsonable(data))
    return tuple(entries)


def replay_entry(entry: CorpusEntry):
    """Run one corpus scenario; returns its fresh FuzzOutcome."""
    return run_scenario(entry.scenario)


def check_entry(entry: CorpusEntry) -> tuple[bool, str]:
    """Replay and judge one entry: ``(ok, human-readable detail)``."""
    outcome = replay_entry(entry)
    observed = finding_kinds(outcome.findings)
    expected = frozenset(entry.expect_kinds)
    if expected <= observed:
        return True, (
            f"{entry.name}: reproduced {', '.join(sorted(expected))}"
        )
    missing = sorted(expected - observed)
    return False, (
        f"{entry.name}: missing kinds {', '.join(missing)} "
        f"(observed: {', '.join(sorted(observed)) or 'none'})"
    )
