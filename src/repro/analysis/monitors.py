"""Streaming conformance monitors: analyze-on-append for every paper property.

The batch pipeline (:func:`repro.analysis.checker.analyze`) judges a run
after it has finished; the monitors here judge it *while it happens*. Each
paper property — FS1, FS2, sFS2a-d, Conditions 1-3, failed-before
acyclicity, well-formedness — is wrapped as a monitor that consumes one
event at a time in O(1)-O(n) amortized per event (never O(history)), and a
:class:`MonitorSet` aggregates them into a live conformance verdict.

The monitors do not reimplement the properties: they feed the *same*
transition state machines (:mod:`repro.core.failure_models`,
:mod:`repro.core.validate`, :mod:`repro.core.failed_before`) that the
batch ``check_*`` functions fold histories through, so streaming and batch
verdicts agree by construction — the property suite replays random runs
both ways and asserts the resulting reports are equal.

Safety properties are prefix-monotone: once violated, a monitor's verdict
is locked and the event index is recorded, which is what
``World.attach_monitor(..., stop_on_violation=True)`` and the sweep
runner's ``early_stop`` mode key off (a violation visible at event 50
aborts a 100k-event case on the spot). Liveness properties (FS1, sFS2a)
cannot be falsified mid-run; their monitors expose the count of open
obligations instead and render verdicts only at :meth:`finalize` time.

Wiring options:

* **streaming** — ``world.attach_monitor(MonitorSet(world.n))`` rides
  :meth:`repro.core.history.HistoryBuilder.append` via the observer hook,
  zero extra passes over the trace;
* **replay** — :meth:`MonitorSet.replay` drives a finished
  :class:`~repro.core.history.History` through the same code path, which
  is exactly how ``analyze()`` is implemented now.
"""

from __future__ import annotations

from typing import Iterable

from repro.core.events import CrashEvent, Event, FailedEvent
from repro.core.failure_models import (
    CheckResult,
    Condition3State,
    FS1State,
    FS2State,
    PropertyState,
    RecoveryState,
    SFS2aState,
    SFS2bState,
    SFS2cState,
    SFS2dState,
    cycle_violations,
    get_failure_model,
)
from repro.core.history import History
from repro.core.validate import ValidationState


class PropertyMonitor:
    """One paper property, judged incrementally.

    Thin verdict plumbing around a core transition state machine: the
    monitor forwards events, exposes the live verdict (``ok``), the lock-in
    index for safety properties (``first_violation_index``), and renders a
    batch-identical :class:`CheckResult` on demand.
    """

    __slots__ = ("_state",)

    #: CheckResult name; matches the batch checker's.
    name = "?"

    def __init__(self, state: PropertyState):
        self._state = state

    @property
    def safety(self) -> bool:
        """Whether the property locks its verdict mid-run.

        Single-sourced from the transition machine's ``safety`` flag
        (:class:`~repro.core.failure_models.PropertyState`), so a monitor
        cannot drift from its state machine's classification. States
        outside that hierarchy (e.g. ``ValidationState``) default to
        safety, which is what a prefix-falsifiable scan is.
        """
        return getattr(self._state, "safety", True)

    def observe(
        self, idx: int, event: Event, vector: tuple[int, ...] | None = None
    ) -> None:
        """Advance the monitor by one appended event."""
        self._state.observe(idx, event, vector)

    @property
    def state(self) -> PropertyState:
        """The underlying transition state machine (shareable, read-only)."""
        return self._state

    @property
    def first_violation_index(self) -> int | None:
        """Event index where the verdict locked (safety only), or None."""
        return self._state.first_violation_index

    @property
    def ok(self) -> bool:
        """Live verdict: no locked violation on the prefix so far.

        For liveness monitors this is always True mid-run (see
        :meth:`pending_obligations` on the FS1/sFS2a monitors for the
        open-obligation view); the finalized verdict is
        ``self.result().ok``.
        """
        return self.first_violation_index is None

    def result(self) -> CheckResult:
        """The property's :class:`CheckResult` for the prefix seen so far."""
        violations = self._state.finalize()
        return CheckResult(self.name, not violations, tuple(violations))


class FS1Monitor(PropertyMonitor):
    """FS1 — completeness of detection (liveness)."""

    __slots__ = ("_pending_ok",)
    name = "FS1"

    def __init__(self, n: int, pending_ok: bool = False):
        super().__init__(FS1State(n))
        self._pending_ok = pending_ok

    def pending_obligations(self) -> int:
        """Crashes not yet detected by every surviving process."""
        return self._state.pending_obligations()

    def result(self) -> CheckResult:
        violations = self._state.finalize(self._pending_ok)
        return CheckResult(self.name, not violations, tuple(violations))


class FS2Monitor(PropertyMonitor):
    """FS2 — no false detections (safety, locks at the detection)."""

    __slots__ = ()
    name = "FS2"

    def __init__(self):
        super().__init__(FS2State())


class SFS2aMonitor(PropertyMonitor):
    """sFS2a — detected processes eventually crash (liveness)."""

    __slots__ = ("_pending_ok",)
    name = "sFS2a"

    def __init__(self, pending_ok: bool = False):
        super().__init__(SFS2aState())
        self._pending_ok = pending_ok

    def pending_obligations(self) -> int:
        """Detections whose target has not crashed yet."""
        return self._state.pending_obligations()

    def result(self) -> CheckResult:
        violations = self._state.finalize(self._pending_ok)
        return CheckResult(self.name, not violations, tuple(violations))


class SFS2bMonitor(PropertyMonitor):
    """sFS2b — failed-before acyclicity (safety, locks at cycle closure)."""

    __slots__ = ()
    name = "sFS2b"

    def __init__(self):
        super().__init__(SFS2bState())

    @property
    def cycle(self) -> list[tuple[int, int]] | None:
        """The locked-in failed-before cycle, or None while acyclic."""
        return self._state.cycle


class SFS2cMonitor(PropertyMonitor):
    """sFS2c — no self-detection (safety, immediate)."""

    __slots__ = ()
    name = "sFS2c"

    def __init__(self):
        super().__init__(SFS2cState())


class SFS2dMonitor(PropertyMonitor):
    """sFS2d — detections propagate ahead of messages (safety, at recv)."""

    __slots__ = ()
    name = "sFS2d"

    def __init__(self):
        super().__init__(SFS2dState())


class ConditionsMonitor(PropertyMonitor):
    """Conditions 1-3 of Theorem 2, aggregated (Section 3.2).

    Condition 1 is identical in force to sFS2a and Condition 2 to sFS2b,
    so the composite can *share* those monitors' state machines instead
    of re-running them per event — :class:`MonitorSet` passes its own in
    (``cond1``/``cond2``), halving the detection-event work on the hot
    streaming path. Standing alone (no shared states) it constructs and
    feeds its own, staying usable as a self-contained monitor. The
    safety verdict locks on the earlier of a cycle closure (Condition 2)
    or a causally-tainted post-detection event (Condition 3); Condition 1
    is liveness and only judged at result time.
    """

    __slots__ = ("_cond1", "_cond2", "_owns_states", "_pending_ok")
    name = "Conditions1-3"

    def __init__(
        self,
        pending_ok: bool = False,
        cond1: SFS2aState | None = None,
        cond2: SFS2bState | None = None,
    ):
        super().__init__(Condition3State())
        # Either both states are shared (and fed by their owners) or both
        # are private (and fed here); mixing would skew event feeds.
        if (cond1 is None) != (cond2 is None):
            raise ValueError("share both cond1 and cond2 states, or neither")
        self._owns_states = cond1 is None
        self._cond1 = cond1 if cond1 is not None else SFS2aState()
        self._cond2 = cond2 if cond2 is not None else SFS2bState()
        self._pending_ok = pending_ok

    def observe(
        self, idx: int, event: Event, vector: tuple[int, ...] | None = None
    ) -> None:
        if self._owns_states:
            self._cond1.observe(idx, event, vector)
            self._cond2.observe(idx, event, vector)
        self._state.observe(idx, event, vector)

    @property
    def first_violation_index(self) -> int | None:
        candidates = [
            i
            for i in (
                self._cond2.first_violation_index,
                self._state.first_violation_index,
            )
            if i is not None
        ]
        return min(candidates) if candidates else None

    def result(self) -> CheckResult:
        violations = (
            self._cond1.finalize(self._pending_ok)
            + self._cond2.finalize()
            + self._state.finalize()
        )
        return CheckResult(self.name, not violations, tuple(violations))


class WellFormednessMonitor(PropertyMonitor):
    """Definitions 1, 6, 7 — validity of the history (safety).

    Model-aware: under a recoverable failure model the scan accepts
    recover events and lossy-FIFO channels (see
    :class:`~repro.core.validate.ValidationState`).
    """

    __slots__ = ()
    name = "valid"

    def __init__(self, n: int, failure_model: str = "fail-stop"):
        super().__init__(ValidationState(n, failure_model))

    @property
    def violations(self) -> list[str]:
        """The well-formedness violations found so far, in scan order."""
        return list(self._state.violations)

    def result(self) -> CheckResult:
        violations = self._state.violations
        return CheckResult(self.name, not violations, tuple(violations))


class RecoveryMonitor(PropertyMonitor):
    """Crash-recovery discipline (safety, locks at the recover event).

    Attached by :class:`MonitorSet` only under a recoverable failure
    model (see :attr:`FailureModel.extra_monitors`); vacuously satisfied
    on fail-stop histories, which contain no recover events.
    """

    __slots__ = ()
    name = "recovery"

    def __init__(self):
        super().__init__(RecoveryState())


class BadPairCounter:
    """Streaming count of Definition 8 *bad pairs*.

    A pair is bad when ``failed_j(i)`` precedes ``crash_i``; the count
    equals ``len(bad_pairs(history))`` on the same prefix (pairs whose
    crash never arrives are not counted, matching the batch helper).
    """

    __slots__ = ("_pending", "_seen", "_crashed", "count")
    name = "bad-pairs"
    safety = False
    first_violation_index = None

    def __init__(self):
        self._pending: dict[int, int] = {}
        self._seen: set[tuple[int, int]] = set()
        self._crashed: set[int] = set()
        self.count = 0

    def observe(
        self, idx: int, event: Event, vector: tuple[int, ...] | None = None
    ) -> None:
        if isinstance(event, FailedEvent):
            key = (event.proc, event.target)
            if key in self._seen:
                return
            self._seen.add(key)
            if event.target not in self._crashed:
                self._pending[event.target] = (
                    self._pending.get(event.target, 0) + 1
                )
        elif isinstance(event, CrashEvent):
            if event.proc not in self._crashed:
                self._crashed.add(event.proc)
                self.count += self._pending.pop(event.proc, 0)


#: Safety monitors whose lock-in aborts an early-stopping run. FS2 is
#: deliberately *not* in the default: under simulated fail-stop a
#: detection legitimately precedes its crash, so FS2 trips on every sFS
#: run — callers monitoring for strict FS can opt it in via ``halt_on``.
#: "recovery" is listed unconditionally; names with no matching monitor
#: in the set (every non-recoverable model) are silently ignored.
DEFAULT_HALT_ON = (
    "valid", "sFS2b", "sFS2c", "sFS2d", "Conditions1-3", "recovery",
)


class MonitorSet:
    """All paper-property monitors over one event stream, plus aggregation.

    Feed it events via :meth:`observe` (the signature matches the
    :class:`~repro.core.history.HistoryBuilder` observer hook) or replay a
    finished history with :meth:`replay`; read the live verdict from
    ``ok_so_far`` / ``first_violation`` and the batch-identical
    per-property results from :meth:`check_results`.

    Args:
        n: number of processes in the system.
        pending_ok: forwarded to the liveness monitors (FS1, sFS2a,
            Condition 1) — treat open obligations as not-yet-violations
            when rendering results.
        halt_on: names of the monitors whose violation counts as "the run
            is non-conformant, stop caring" for ``first_violation`` /
            ``ok_so_far`` (default :data:`DEFAULT_HALT_ON`).
        failure_model: the failure semantics the observed run operates
            under; switches well-formedness to the model's rules and
            attaches the model's extra monitors (e.g. ``recovery``).
    """

    def __init__(
        self,
        n: int,
        pending_ok: bool = False,
        halt_on: Iterable[str] = DEFAULT_HALT_ON,
        failure_model: str = "fail-stop",
    ):
        self.n = n
        self.pending_ok = pending_ok
        self.model = get_failure_model(failure_model)
        self.validity = WellFormednessMonitor(n, failure_model)
        self.fs1 = FS1Monitor(n, pending_ok)
        self.fs2 = FS2Monitor()
        self.sfs2a = SFS2aMonitor(pending_ok)
        self.sfs2b = SFS2bMonitor()
        self.sfs2c = SFS2cMonitor()
        self.sfs2d = SFS2dMonitor()
        # Conditions 1/2 share the sFS2a/sFS2b machines (identical in
        # force), so detection events are processed once, not twice.
        self.conditions = ConditionsMonitor(
            pending_ok, cond1=self.sfs2a.state, cond2=self.sfs2b.state
        )
        self.bad_pairs = BadPairCounter()
        self.recovery = (
            RecoveryMonitor()
            if "recovery" in self.model.extra_monitors
            else None
        )
        self.monitors: tuple = (
            self.validity,
            self.fs1,
            self.fs2,
            self.sfs2a,
            self.sfs2b,
            self.sfs2c,
            self.sfs2d,
            self.conditions,
        ) + ((self.recovery,) if self.recovery is not None else ())
        self._halt_on = tuple(halt_on)
        self._safety = tuple(
            m for m in self.monitors if m.safety and m.name in self._halt_on
        )
        self._tripped: set[str] = set()
        #: Every safety lock-in observed, as ``(event_index, monitor name)``
        #: in discovery order (which is event-index order).
        self.violation_log: list[tuple[int, str]] = []
        self.events_seen = 0
        # Prebound per-event dispatch: monitors whose observe() is the
        # inherited one-line forwarder are advanced via their state
        # machine directly, skipping a wrapper call per monitor per
        # event; overriders (ConditionsMonitor, RecoveryMonitor) keep
        # their own observe. Same for the safety probe targets — a
        # PropertyState's ``first_violation_index`` is a plain slot,
        # cheaper than re-entering the monitor property every event.
        base_observe = PropertyMonitor.observe
        base_fvi = PropertyMonitor.first_violation_index
        self._observe_fns = tuple(
            m._state.observe if type(m).observe is base_observe else m.observe
            for m in self.monitors
        ) + (self.bad_pairs.observe,)
        self._safety_watch = [
            (
                m.name,
                m._state
                if type(m).first_violation_index is base_fvi
                else m,
            )
            for m in self._safety
        ]

    # ------------------------------------------------------------------
    # Feeding
    # ------------------------------------------------------------------

    def observe(
        self, idx: int, event: Event, vector: tuple[int, ...] | None = None
    ) -> None:
        """Advance every monitor by one event (HistoryBuilder-hook shape)."""
        for observe in self._observe_fns:
            observe(idx, event, vector)
        self.events_seen += 1
        watch = self._safety_watch
        tripped_any = False
        for name, probe in watch:
            locked = probe.first_violation_index
            if locked is not None:
                self._tripped.add(name)
                self.violation_log.append((locked, name))
                tripped_any = True
        if tripped_any:
            # A tripped safety verdict is locked for good — stop probing
            # it on every subsequent event (trips are rare; the rebuild
            # amortises to nothing).
            self._safety_watch = [
                pair for pair in watch if pair[0] not in self._tripped
            ]

    def replay(self, history: History) -> "MonitorSet":
        """Drive a finished history through the same streaming path."""
        for idx, (event, vector) in enumerate(zip(history, history.vectors)):
            self.observe(idx, event, vector)
        return self

    # ------------------------------------------------------------------
    # Live verdict
    # ------------------------------------------------------------------

    @property
    def first_violation(self) -> tuple[int, str] | None:
        """Earliest halt-relevant violation ``(event index, monitor name)``."""
        return self.violation_log[0] if self.violation_log else None

    @property
    def ok_so_far(self) -> bool:
        """No halt-relevant safety monitor has tripped yet."""
        return not self.violation_log

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------

    @property
    def cycle(self) -> tuple[tuple[int, int], ...] | None:
        """The failed-before cycle (report form), or None while acyclic."""
        cycle = self.sfs2b.cycle
        return tuple(cycle) if cycle else None

    def check_results(self) -> dict[str, CheckResult]:
        """Batch-identical per-property results for the prefix seen so far."""
        return {
            monitor.name: monitor.result() for monitor in self.monitors
        }

    def transition_coverage(self) -> tuple[str, ...]:
        """Which dispositions the property state machines reached.

        The coverage-export hook (:mod:`repro.analysis.coverage`): one
        label per monitor describing where its transition state machine
        ended up — ``ok``, ``violated`` at a bucketed lock-in index, or
        ``unsettled`` (a liveness result that finalizes non-ok without a
        lock-in) — plus near-miss labels for open liveness obligations
        at finalize time, the bad-pair count, and the locked cycle
        length. Deterministic and read-only: calling it never advances
        any state machine, so serial, parallel, and inproc runs of the
        same scenario export identical tuples.
        """
        from repro.analysis.coverage import bucket

        labels = []
        for monitor in self.monitors:
            locked = monitor.first_violation_index
            if locked is not None:
                labels.append(f"{monitor.name}:violated@{bucket(locked)}")
            elif monitor.result().ok:
                labels.append(f"{monitor.name}:ok")
            else:
                labels.append(f"{monitor.name}:unsettled")
            pending = getattr(monitor, "pending_obligations", None)
            if pending is not None:
                open_count = pending()
                if open_count:
                    labels.append(
                        f"{monitor.name}:pending={bucket(open_count)}"
                    )
        if self.bad_pairs.count:
            labels.append(f"bad-pairs={bucket(self.bad_pairs.count)}")
        if self.cycle is not None:
            labels.append(f"cycle-len={len(self.cycle)}")
        return tuple(labels)

    def summary(self) -> str:
        """A compact live-verdict rendering for streaming output.

        Locked safety violations render as ``VIOLATED`` with their event
        index; liveness properties whose obligations are still open (and
        composites failing only on a liveness component) render as
        ``pending`` — a finite prefix cannot falsify them.
        """
        lines = []
        for monitor in self.monitors:
            result = monitor.result()
            locked = monitor.first_violation_index
            if result.ok:
                mark = "ok"
            elif locked is not None:
                mark = f"VIOLATED (locked at event [{locked}])"
            else:
                open_count = getattr(monitor, "pending_obligations", None)
                tail = f" ({open_count()} open)" if open_count else ""
                mark = f"pending{tail}"
            lines.append(f"{monitor.name:<14} {mark}")
        lines.append(f"{'bad pairs':<14} {self.bad_pairs.count}")
        if self.cycle is not None:
            lines.extend(cycle_violations(list(self.cycle)))
        return "\n".join(lines)
