"""repro — Simulating Fail-Stop in Asynchronous Distributed Systems.

A full reproduction of Sabel & Marzullo (Cornell TR 94-1413 / PODC 1994):

* :mod:`repro.core` — the formal model: events, histories, happens-before,
  the FS and sFS failure models, the Theorem 5 indistinguishability engine,
  quorums, and the Section 4 lower bounds.
* :mod:`repro.sim` — a deterministic discrete-event simulator of the
  asynchronous system model (FIFO channels, unbounded delays, adversary).
* :mod:`repro.protocols` — the Section 5 one-round simulated-fail-stop
  protocol and the Section 6 "cheap" unilateral model.
* :mod:`repro.detectors` — FS1 suspicion sources (heartbeat timeout,
  phi-accrual).
* :mod:`repro.apps` — leader election, last-process-to-fail, membership.
* :mod:`repro.analysis` — conformance reports, metrics, experiment drivers.
* :mod:`repro.runtime` — an asyncio runtime for wall-clock validation.
"""

from repro._version import __version__
from repro.errors import (
    BoundsError,
    CannotRearrangeError,
    InvalidHistoryError,
    ProtocolError,
    ReproError,
    SimulationError,
)

__all__ = [
    "__version__",
    "ReproError",
    "InvalidHistoryError",
    "CannotRearrangeError",
    "ProtocolError",
    "SimulationError",
    "BoundsError",
]
