"""repro — Simulating Fail-Stop in Asynchronous Distributed Systems.

A full reproduction of Sabel & Marzullo (Cornell TR 94-1413 / PODC 1994):

* :mod:`repro.core` — the formal model: events, histories, happens-before,
  the FS and sFS failure models, the Theorem 5 indistinguishability engine,
  quorums, and the Section 4 lower bounds.
* :mod:`repro.sim` — a deterministic discrete-event simulator of the
  asynchronous system model (FIFO channels, unbounded delays, adversary).
* :mod:`repro.protocols` — the Section 5 one-round simulated-fail-stop
  protocol and the Section 6 "cheap" unilateral model.
* :mod:`repro.detectors` — FS1 suspicion sources (heartbeat timeout,
  phi-accrual).
* :mod:`repro.apps` — leader election, last-process-to-fail, membership.
* :mod:`repro.analysis` — conformance reports, metrics, experiment drivers.
* :mod:`repro.runtime` — an asyncio runtime for wall-clock validation.
"""

import platform

from repro._version import __version__
from repro.errors import (
    BoundsError,
    CannotRearrangeError,
    InvalidHistoryError,
    ProtocolError,
    ReproError,
    SimulationError,
)

def core_info() -> dict:
    """Which event core is active and how it was selected.

    ``core`` is ``"accel"`` (compiled extension) or ``"pure"``;
    ``selection`` is ``"env"`` when forced via ``REPRO_CORE`` and
    ``"auto"`` when detected; ``accel_import_error`` explains, in auto
    mode, why the extension was unavailable (else ``None``).
    """
    from repro import _core

    return {
        "version": __version__,
        "python": platform.python_version(),
        "core": _core.ACTIVE_IMPL,
        "selection": _core.SELECTION,
        "accel_import_error": _core.ACCEL_IMPORT_ERROR,
    }


__all__ = [
    "__version__",
    "core_info",
    "ReproError",
    "InvalidHistoryError",
    "CannotRearrangeError",
    "ProtocolError",
    "SimulationError",
    "BoundsError",
]
