"""Result sinks: where finished job results stream, in deterministic order.

The execution core (:func:`repro.exec.core.run_jobs`) delivers every
result to a :class:`ResultSink` **in planned job order** — index 0, then
1, then 2 — regardless of the order the executor actually completed them
in. Delivery is *streaming*: a result is emitted the moment it and every
result before it are available, so a consumer watching the sink sees the
longest finished prefix grow live while later jobs are still running.
That ordering contract is what lets a live consumer (the CLI's
``--stream`` mode today, a dashboard over a socket tomorrow) render
partial output that is already final — nothing it has seen can be
reordered or retracted by later completions.

Sinks are synchronous and must not raise: a sink failure would otherwise
abort a long computation whose results are themselves fine. Exceptions
from :meth:`ResultSink.emit` are deliberately *not* swallowed here —
a crashing consumer is a bug to surface, not to hide — but sinks that
wrap fragile I/O should catch their own errors.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

from repro.exec.job import JobSpec


class ResultSink:
    """Receives results in planned order, as their prefix completes.

    Lifecycle: ``open(total)`` once, then exactly ``total`` calls to
    ``emit(index, job, result)`` with strictly increasing ``index``,
    then ``close()`` once — also on error, so sinks may release
    resources unconditionally. Under a partitioned run ``total`` is the
    worker's share of the plan, so the open/emit accounting always
    balances; ``index`` is always the full-plan index.
    """

    def open(self, total: int) -> None:
        """Called once before any result, with the emission count."""

    def emit(self, index: int, job: JobSpec, result: Any) -> None:
        """Called once per owned job, in strictly increasing index order."""

    def close(self) -> None:
        """Called once after the last result (or on abort)."""


class CollectSink(ResultSink):
    """Accumulates results in a list (planned order, by construction)."""

    def __init__(self) -> None:
        self.results: list[Any] = []
        self.total: int | None = None
        self.closed = False

    def open(self, total: int) -> None:
        self.total = total

    def emit(self, index: int, job: JobSpec, result: Any) -> None:
        del index, job
        self.results.append(result)

    def close(self) -> None:
        self.closed = True


class CallbackSink(ResultSink):
    """Adapts a plain ``fn(index, job, result)`` callable to the protocol."""

    def __init__(self, fn: Callable[[int, JobSpec, Any], None]):
        self._fn = fn

    def emit(self, index: int, job: JobSpec, result: Any) -> None:
        self._fn(index, job, result)


class TeeSink(ResultSink):
    """Fans every sink call out to several sinks, in order."""

    def __init__(self, sinks: Sequence[ResultSink]):
        self._sinks = list(sinks)

    def open(self, total: int) -> None:
        for sink in self._sinks:
            sink.open(total)

    def emit(self, index: int, job: JobSpec, result: Any) -> None:
        for sink in self._sinks:
            sink.emit(index, job, result)

    def close(self) -> None:
        for sink in self._sinks:
            sink.close()
