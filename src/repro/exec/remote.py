"""Multi-host dispatch: the ``remote`` executor and its worker loop.

This backend is the repository dogfooding its own subject matter. The
paper asks how a system can *simulate* fail-stop — reliable failure
detection — over an asynchronous network where perfect detection is
impossible; a fleet coordinator shipping jobs to worker processes faces
exactly that problem. So the coordinator here watches its workers with
the repo's own detectors (:class:`~repro.detectors.HeartbeatMonitor` /
:class:`~repro.detectors.PhiAccrualMonitor`, the wall-clock face of the
DES drivers, via the :class:`~repro.detectors.base.ClockSource` seam),
and treats suspicion the way the paper says it must be treated: as a
possibly-erroneous verdict. A worker declared failed has its unfinished
jobs reassigned to survivors; if the suspicion was false and the worker's
late results still arrive, they are *accepted* — jobs are pure functions
of their specs, so duplicates are bit-identical and safe to reconcile
(the same property that makes :func:`~repro.exec.journal.merge_journals`
tolerate overlapping journals).

Topology and protocol::

    coordinator (RemoteExecutor.submit)          worker (run_worker)
        bind + accept / dial out  ◀── TCP ──▶  --connect / --listen
        ── welcome {version, heartbeat_interval} ──▶
        ◀── hello {version, name, pid} ──           (worker speaks first)
        ── assign {jobs: [[index, pickled spec], ...]} ──▶
        ◀── result {index, job: sha256, data: b64} ──   (streamed per job)
        ◀── heartbeat {n} ──                (background thread, interval)
        ── shutdown ──▶

Every frame is one JSON object behind a 4-byte big-endian length prefix.
Job specs and results travel pickled and base64-armoured — the exact
encoding of a journal line, because a result frame *is* a journal line
in flight: the coordinator's :func:`~repro.exec.core.run_jobs` loop
records each one to its journal as it lands, so a multi-host run's
checkpoint file is indistinguishable from a single-host run's, and the
merged result list (and any digest over it) is bit-identical to a serial
run by construction. The same trust model applies too: frames carry
pickles, so only run workers you control — this is a dispatch protocol
for your own fleet, not an interchange format. The fleet must also be
*homogeneous*: duplicate results (from falsely-suspected workers whose
jobs were reassigned) are reconciled by comparing the armoured pickle
bytes, so every worker must run the same Python and pickle protocol as
the coordinator, or semantically identical results can differ byte-wise
and be refused as disagreement.

Partitioning rides the PR 5 seam: the coordinator splits the pending
plan with :func:`~repro.exec.journal.partition_jobs` (strided, so every
worker's finished results spread across the index range and the
in-order streaming prefix grows steadily), ships each share, and streams
completions back the moment they land.

Deployment shapes (``spawn`` / ``accept`` / ``hosts``):

* ``spawn=N`` — the coordinator listens on loopback and spawns N local
  ``python -m repro worker --connect host:port`` subprocesses. The CLI's
  ``--backend remote --workers 3`` quickstart, and the CI smoke's shape.
* ``accept=N`` — the coordinator listens on ``listen`` and waits for N
  workers started elsewhere with ``--connect`` to dial in (the
  firewall-friendly direction for a real fleet).
* ``hosts=("h1:7700", ...)`` — workers started with ``--listen`` on each
  host; the coordinator dials out.
"""

from __future__ import annotations

import hashlib
import json
import os
import selectors
import socket
import subprocess
import sys
import threading
import time
import traceback
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Sequence

import repro
from repro.detectors import (
    ClockSource,
    HeartbeatMonitor,
    MonotonicClock,
    PeerMonitor,
    PhiAccrualMonitor,
)
from repro.errors import SimulationError
from repro.exec.executors import Executor, OnResult, Pending
from repro.exec.job import JobSpec, job_digest, run_job

# The journal's pickle+base64 armour, reused on the wire on purpose: a
# result frame carries exactly the payload a journal line records.
from repro.exec.journal import _decode, _encode, partition_jobs

PROTOCOL_VERSION = 1
"""Wire protocol version; hello/welcome frames must agree on it."""

MAX_FRAME = 64 * 1024 * 1024
"""Upper bound on one frame's payload, against corrupt length prefixes."""

REMOTE_DETECTORS = ("heartbeat", "phi")
"""Failure detectors the coordinator can watch its workers with."""

_SEND_TIMEOUT = 10.0
_RECV_CHUNK = 65536


def _parse_hostport(text: str) -> tuple[str, int]:
    """``"host:port"`` → ``(host, port)``; friendly errors otherwise."""
    host, sep, port = str(text).rpartition(":")
    if not sep or not host:
        raise SimulationError(
            f"worker address {text!r} is not of the form host:port"
        )
    try:
        return host, int(port)
    except ValueError:
        raise SimulationError(
            f"worker address {text!r} has a non-numeric port"
        ) from None


def parse_worker_spec(spec: int | str | Sequence[str] | None) -> dict:
    """A ``--workers`` value as :class:`RemoteExecutor` keyword arguments.

    ``None`` → spawn 2 local workers (the documented default); an integer
    (or digit string) ``N`` → spawn N; a ``"host:port,host:port"`` string
    or sequence → dial out to workers already listening there.
    """
    if spec is None:
        return {"spawn": 2}
    if isinstance(spec, int):
        return {"spawn": spec}
    if isinstance(spec, str):
        text = spec.strip()
        if text.isdigit():
            return {"spawn": int(text)}
        spec = [part.strip() for part in text.split(",") if part.strip()]
    hosts = tuple(spec)
    if not hosts:
        raise SimulationError("empty remote worker spec")
    for addr in hosts:
        _parse_hostport(addr)
    return {"hosts": hosts}


# ----------------------------------------------------------------------
# Framing: one JSON object per 4-byte length-prefixed frame
# ----------------------------------------------------------------------


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    buf = bytearray()
    while len(buf) < n:
        chunk = sock.recv(n - len(buf))
        if not chunk:
            raise ConnectionError("connection closed by peer")
        buf += chunk
    return bytes(buf)


def _recv_frame(sock: socket.socket) -> dict:
    """Blocking read of one complete frame."""
    length = int.from_bytes(_recv_exact(sock, 4), "big")
    if length > MAX_FRAME:
        raise SimulationError(
            f"oversized frame ({length} bytes); corrupt stream?"
        )
    return json.loads(_recv_exact(sock, length).decode("utf-8"))


def _send_frame(
    sock: socket.socket, obj: dict, lock: threading.Lock | None = None
) -> None:
    """Blocking write of one complete frame (lock serialises writers)."""
    data = json.dumps(obj).encode("utf-8")
    payload = len(data).to_bytes(4, "big") + data
    if lock is not None:
        with lock:
            sock.sendall(payload)
    else:
        sock.sendall(payload)


class _Channel:
    """Coordinator-side framed connection: non-blocking reads + buffering.

    ``drain()`` pulls every byte currently available and returns the
    complete frames it holds, keeping any partial frame buffered — so a
    worker that dies (or hangs) mid-write can never block the
    coordinator's event loop, which must keep ticking for the failure
    detector to run.
    """

    def __init__(self, sock: socket.socket):
        self.sock = sock
        self.open = True
        self._buf = bytearray()
        sock.setblocking(False)

    def drain(self) -> list[dict]:
        while self.open:
            try:
                chunk = self.sock.recv(_RECV_CHUNK)
            except (BlockingIOError, InterruptedError):
                break
            except OSError:
                self.open = False
                break
            if not chunk:
                self.open = False
                break
            self._buf += chunk
        frames = []
        while True:
            frame = self._next_frame()
            if frame is None:
                break
            frames.append(frame)
        return frames

    def _next_frame(self) -> dict | None:
        if len(self._buf) < 4:
            return None
        length = int.from_bytes(self._buf[:4], "big")
        if length > MAX_FRAME:
            raise SimulationError(
                f"oversized frame ({length} bytes); corrupt stream?"
            )
        if len(self._buf) < 4 + length:
            return None
        payload = bytes(self._buf[4 : 4 + length])
        del self._buf[: 4 + length]
        return json.loads(payload.decode("utf-8"))

    def send(self, obj: dict) -> bool:
        """Send one frame; ``False`` (and closed) if the peer is gone."""
        if not self.open:
            return False
        data = json.dumps(obj).encode("utf-8")
        payload = len(data).to_bytes(4, "big") + data
        self.sock.settimeout(_SEND_TIMEOUT)
        try:
            self.sock.sendall(payload)
            return True
        except OSError:
            self.open = False
            return False
        finally:
            try:
                self.sock.setblocking(False)
            except OSError:
                self.open = False

    def close(self) -> None:
        self.open = False
        try:
            self.sock.close()
        except OSError:
            pass


# ----------------------------------------------------------------------
# Worker: python -m repro worker --connect host:port (or --listen)
# ----------------------------------------------------------------------


def _heartbeat_loop(
    sock: socket.socket,
    lock: threading.Lock,
    interval: float,
    stop: threading.Event,
) -> None:
    """Background liveness beacon; the worker's FS1 obligation.

    Runs in its own thread so a long job never silences the worker — the
    heartbeat attests to the *process*, not to job completion.
    """
    n = 0
    while not stop.wait(interval):
        try:
            _send_frame(sock, {"kind": "heartbeat", "n": n}, lock)
        except OSError:
            return
        n += 1


def _dial(address: str, retry_for: float) -> socket.socket:
    """Connect to the coordinator, retrying briefly (start order freedom)."""
    host, port = _parse_hostport(address)
    deadline = time.monotonic() + retry_for
    while True:
        try:
            sock = socket.create_connection((host, port), timeout=10.0)
        except OSError:
            if time.monotonic() >= deadline:
                raise
            time.sleep(0.2)
        else:
            # The dial timeout must not leak into _serve: the coordinator
            # sends nothing between assign and shutdown, so an idle worker
            # would hit TimeoutError in _recv_frame, die, and be falsely
            # suspected. Liveness is the detector's job (EOF/errors only).
            sock.settimeout(None)
            return sock


def _readable(sock: socket.socket) -> bool:
    import select

    ready, _, _ = select.select([sock], [], [], 0)
    return bool(ready)


def _serve(sock: socket.socket, name: str) -> int:
    _send_frame(
        sock,
        {
            "kind": "hello",
            "version": PROTOCOL_VERSION,
            "name": name,
            "pid": os.getpid(),
        },
    )
    welcome = _recv_frame(sock)
    if welcome.get("kind") != "welcome":
        raise SimulationError(
            f"coordinator opened with {welcome.get('kind')!r}, not welcome"
        )
    if welcome.get("version") != PROTOCOL_VERSION:
        raise SimulationError(
            f"coordinator speaks protocol {welcome.get('version')!r}, "
            f"this worker speaks {PROTOCOL_VERSION}"
        )
    interval = float(welcome.get("heartbeat_interval", 1.0))
    lock = threading.Lock()
    stop = threading.Event()
    beat = threading.Thread(
        target=_heartbeat_loop,
        args=(sock, lock, interval, stop),
        daemon=True,
        name="repro-worker-heartbeat",
    )
    beat.start()
    queue: deque[tuple[int, JobSpec]] = deque()
    try:
        while True:
            # Drain waiting frames (reassignments land while jobs run);
            # block only when there is no queued work to do.
            block = not queue
            while block or _readable(sock):
                frame = _recv_frame(sock)
                kind = frame.get("kind")
                if kind == "assign":
                    for index, blob in frame["jobs"]:
                        queue.append((index, _decode(blob)))
                elif kind == "shutdown":
                    return 0
                else:
                    raise SimulationError(
                        f"coordinator sent unknown frame kind {kind!r}"
                    )
                block = False
            index, job = queue.popleft()
            try:
                result = run_job(job)
            except Exception:
                _send_frame(
                    sock,
                    {
                        "kind": "error",
                        "index": index,
                        "message": traceback.format_exc(limit=20),
                    },
                    lock,
                )
                continue
            _send_frame(
                sock,
                {
                    "kind": "result",
                    "index": index,
                    "job": job_digest(job),
                    "data": _encode(result),
                },
                lock,
            )
    finally:
        stop.set()


def run_worker(
    connect: str | None = None,
    listen: str | None = None,
    name: str | None = None,
    retry_for: float = 10.0,
) -> int:
    """Serve jobs for a remote coordinator until it says shutdown.

    Exactly one of ``connect`` (dial the coordinator at ``host:port``,
    retrying for ``retry_for`` seconds so start order does not matter)
    or ``listen`` (bind ``host:port`` and await the coordinator's dial)
    must be given. The worker runs each assigned job with
    :func:`~repro.exec.job.run_job` and streams the result back; a
    background thread heartbeats at the interval the coordinator's
    welcome frame dictates. Returns the process exit code.
    """
    if (connect is None) == (listen is None):
        raise SimulationError(
            "exactly one of connect= or listen= is required"
        )
    if connect is not None:
        sock = _dial(connect, retry_for)
    else:
        host, port = _parse_hostport(listen)
        server = socket.create_server((host, port))
        try:
            server.settimeout(max(retry_for, 60.0))
            sock, _ = server.accept()
            sock.settimeout(None)
        finally:
            server.close()
    label = name if name else f"{socket.gethostname()}-{os.getpid()}"
    try:
        return _serve(sock, label)
    finally:
        try:
            sock.close()
        except OSError:
            pass


# ----------------------------------------------------------------------
# Coordinator: the "remote" executor
# ----------------------------------------------------------------------


@dataclass
class RemoteStats:
    """What one ``submit`` did, for smokes and post-run reporting."""

    workers: int = 0
    spawned: int = 0
    results: int = 0
    duplicates: int = 0
    reassigned: int = 0
    failed: list[str] = field(default_factory=list)


class _WorkerSession:
    """Coordinator-side state for one connected worker."""

    def __init__(self, peer: int, name: str, channel: _Channel, proc=None):
        self.peer = peer
        self.name = name
        self.channel = channel
        self.proc = proc
        self.outstanding: dict[int, JobSpec] = {}
        self.failed = False

    def send_assign(self, assigned: Sequence[tuple[int, JobSpec]]) -> None:
        # A failed send just closes the channel: the worker's silence
        # will trip the detector and its share will be reassigned.
        self.channel.send(
            {
                "kind": "assign",
                "jobs": [[index, _encode(job)] for index, job in assigned],
            }
        )


class RemoteExecutor(Executor):
    """Ships job partitions to worker processes over TCP; fault tolerant.

    The plan is split with :func:`~repro.exec.journal.partition_jobs`,
    one strided share per worker; results stream back as they complete
    and reach ``on_result`` in arrival order (the execution core launders
    them into planned order, exactly as for every other executor).
    Workers are watched with the repo's own failure detectors on
    wall-clock time; a worker declared failed has its unfinished indices
    reassigned to survivors, and late results from falsely-suspected
    workers are accepted as agreeing duplicates. See the module
    docstring for the wire protocol and deployment shapes.

    Args:
        spawn: spawn this many local worker subprocesses (loopback).
        hosts: dial out to workers listening at these ``host:port``s.
        accept: await this many workers dialling in to ``listen``.
        listen: coordinator bind address for spawn/accept modes.
        detector: ``"heartbeat"`` (fixed timeout) or ``"phi"`` (accrual).
        heartbeat_interval: interval workers are told to beat at.
        timeout: heartbeat detector's silence threshold
            (default ``10 * heartbeat_interval``).
        threshold: phi detector's suspicion threshold.
        check_every: detector poll period (default ``interval / 2``).
        connect_timeout: deadline for the whole fleet to connect.
        clock: detector time source (tests inject; default wall clock).
        chaos: fault-injection hook for tests and the CI kill-a-worker
            smoke — called as ``chaos(executor, results_done)`` after
            each newly completed result.
    """

    name = "remote"

    def __init__(
        self,
        spawn: int = 0,
        hosts: Sequence[str] = (),
        accept: int = 0,
        listen: str = "127.0.0.1:0",
        detector: str = "heartbeat",
        heartbeat_interval: float = 0.25,
        timeout: float | None = None,
        threshold: float = 8.0,
        check_every: float | None = None,
        connect_timeout: float = 30.0,
        clock: ClockSource | None = None,
        chaos: Callable[["RemoteExecutor", int], None] | None = None,
    ):
        modes = sum((spawn > 0, len(hosts) > 0, accept > 0))
        if modes != 1:
            raise SimulationError(
                "exactly one of spawn=N, hosts=(...), or accept=N must "
                "be given"
            )
        if detector not in REMOTE_DETECTORS:
            raise SimulationError(
                f"unknown remote detector {detector!r}; choose from "
                f"{', '.join(REMOTE_DETECTORS)}"
            )
        if heartbeat_interval <= 0:
            raise SimulationError(
                f"heartbeat_interval must be > 0, got {heartbeat_interval}"
            )
        self.spawn = spawn
        self.hosts = tuple(hosts)
        self.accept = accept
        self.listen = listen
        self.detector = detector
        self.heartbeat_interval = heartbeat_interval
        self.timeout = (
            timeout if timeout is not None else 10 * heartbeat_interval
        )
        self.threshold = threshold
        self.check_every = (
            check_every if check_every is not None else heartbeat_interval / 2
        )
        self.connect_timeout = connect_timeout
        self.clock = clock
        self.chaos = chaos
        self.stats = RemoteStats()
        self.processes: list[subprocess.Popen] = []
        self.monitor: PeerMonitor | None = None
        """The failure detector of the most recent ``submit``; its
        inherited :class:`~repro.detectors.SuspicionLog` records every
        worker suspicion for post-run accounting."""

    # -- connection setup ----------------------------------------------

    def _child_env(self) -> dict[str, str]:
        """Spawn env: make sure the repro package itself is importable."""
        env = dict(os.environ)
        src = str(Path(repro.__file__).resolve().parents[1])
        parts = [
            p for p in env.get("PYTHONPATH", "").split(os.pathsep) if p
        ]
        if src not in parts:
            parts.insert(0, src)
        env["PYTHONPATH"] = os.pathsep.join(parts)
        return env

    def _handshake(self, sock: socket.socket, deadline: float) -> dict:
        sock.settimeout(max(deadline - time.monotonic(), 0.1))
        hello = _recv_frame(sock)
        if hello.get("kind") != "hello":
            raise SimulationError(
                f"worker opened with {hello.get('kind')!r}, not hello"
            )
        if hello.get("version") != PROTOCOL_VERSION:
            raise SimulationError(
                f"worker speaks protocol {hello.get('version')!r}, "
                f"this coordinator speaks {PROTOCOL_VERSION}"
            )
        _send_frame(
            sock,
            {
                "kind": "welcome",
                "version": PROTOCOL_VERSION,
                "heartbeat_interval": self.heartbeat_interval,
            },
        )
        return hello

    def _connect_workers(self) -> list[_WorkerSession]:
        deadline = time.monotonic() + self.connect_timeout
        socks: list[tuple[socket.socket, subprocess.Popen | None]] = []
        if self.hosts:
            for addr in self.hosts:
                host, port = _parse_hostport(addr)
                try:
                    sock = socket.create_connection(
                        (host, port), timeout=self.connect_timeout
                    )
                except OSError as exc:
                    for open_sock, _ in socks:
                        open_sock.close()
                    raise SimulationError(
                        f"cannot reach worker at {addr}: {exc} (start it "
                        "with: python -m repro worker --listen "
                        f"{addr})"
                    ) from exc
                socks.append((sock, None))
        else:
            count = self.spawn or self.accept
            host, port = _parse_hostport(self.listen)
            server = socket.create_server((host, port))
            bound_port = server.getsockname()[1]
            try:
                if self.spawn:
                    for _ in range(self.spawn):
                        proc = subprocess.Popen(
                            [
                                sys.executable,
                                "-m",
                                "repro",
                                "worker",
                                "--connect",
                                f"{host}:{bound_port}",
                            ],
                            env=self._child_env(),
                        )
                        self.processes.append(proc)
                        self.stats.spawned += 1
                for _ in range(count):
                    server.settimeout(
                        max(deadline - time.monotonic(), 0.1)
                    )
                    try:
                        sock, _ = server.accept()
                    except TimeoutError as exc:
                        for open_sock, _ in socks:
                            open_sock.close()
                        raise SimulationError(
                            f"only {len(socks)} of {count} workers "
                            f"connected within {self.connect_timeout}s"
                        ) from exc
                    socks.append((sock, None))
            finally:
                server.close()
        sessions = []
        by_pid = {proc.pid: proc for proc in self.processes}
        try:
            for peer, (sock, proc) in enumerate(socks):
                hello = self._handshake(sock, deadline)
                name = str(hello.get("name", f"worker-{peer}"))
                proc = proc or by_pid.get(hello.get("pid"))
                sessions.append(
                    _WorkerSession(peer, name, _Channel(sock), proc=proc)
                )
        except BaseException:
            # A mid-loop handshake failure (version mismatch, timeout)
            # must not strand the fleet: close every socket, handshaken
            # or not; submit's finally reaps any spawned processes.
            for sock, _ in socks:
                try:
                    sock.close()
                except OSError:
                    pass
            raise
        self.stats.workers = len(sessions)
        return sessions

    # -- detection -----------------------------------------------------

    def _make_monitor(self) -> PeerMonitor:
        clock = self.clock if self.clock is not None else MonotonicClock()
        if self.detector == "phi":
            return PhiAccrualMonitor(
                threshold=self.threshold,
                expected_interval=self.heartbeat_interval,
                clock=clock,
            )
        return HeartbeatMonitor(timeout=self.timeout, clock=clock)

    def _declare_failed(
        self,
        session: _WorkerSession,
        sessions: list[_WorkerSession],
        done: dict[int, str],
    ) -> None:
        """The detector's verdict: reassign the worker's unfinished share."""
        if session.failed:
            return
        session.failed = True
        self.stats.failed.append(session.name)
        orphans = [
            (index, job)
            for index, job in sorted(session.outstanding.items())
            if index not in done
        ]
        session.outstanding.clear()
        survivors = [s for s in sessions if not s.failed]
        if not orphans or not survivors:
            return
        self.stats.reassigned += len(orphans)
        batches: dict[int, list[tuple[int, JobSpec]]] = {}
        for k, (index, job) in enumerate(orphans):
            target = survivors[k % len(survivors)]
            target.outstanding[index] = job
            batches.setdefault(target.peer, []).append((index, job))
        by_peer = {s.peer: s for s in survivors}
        for peer, batch in batches.items():
            by_peer[peer].send_assign(batch)

    # -- the dispatch loop ---------------------------------------------

    def _handle_frame(
        self,
        session: _WorkerSession,
        frame: dict,
        monitor: PeerMonitor,
        done: dict[int, str],
        expected: dict[int, str],
        on_result: OnResult,
    ) -> None:
        kind = frame.get("kind")
        if kind == "heartbeat":
            monitor.heartbeat(session.peer)
            return
        if kind == "error":
            raise SimulationError(
                f"remote worker {session.name} failed job "
                f"{frame.get('index')}:\n{frame.get('message')}"
            )
        if kind != "result":
            raise SimulationError(
                f"remote worker {session.name} sent unknown frame kind "
                f"{kind!r}"
            )
        monitor.heartbeat(session.peer)  # a result is proof of life too
        index = frame.get("index")
        data = frame.get("data")
        if not isinstance(index, int) or index not in expected:
            raise SimulationError(
                f"remote worker {session.name} reported a result for "
                f"unplanned index {index!r}"
            )
        if frame.get("job") != expected[index]:
            raise SimulationError(
                f"remote worker {session.name}: job hash mismatch at "
                f"index {index}; worker and coordinator disagree on the "
                "plan"
            )
        if not isinstance(data, str):
            raise SimulationError(
                f"remote worker {session.name} sent a malformed result "
                f"for index {index}: data is "
                f"{type(data).__name__}, not a base64 string"
            )
        payload_digest = hashlib.sha256(data.encode("ascii")).hexdigest()
        session.outstanding.pop(index, None)
        if index in done:
            # A falsely-suspected worker finishing a job that was also
            # reassigned: pure jobs make the copies bit-identical, so
            # agreement is checked and the duplicate dropped.
            if done[index] != payload_digest:
                raise SimulationError(
                    f"remote workers disagree on job {index}; refusing "
                    "to merge (byte-wise pickle comparison — a mixed "
                    "fleet with differing Python/pickle versions can "
                    "trip this on identical results; run a homogeneous "
                    "fleet)"
                )
            self.stats.duplicates += 1
            return
        try:
            result = _decode(data)
        except Exception as exc:
            raise SimulationError(
                f"remote worker {session.name} sent an undecodable "
                f"result for index {index}: {exc}"
            ) from None
        done[index] = payload_digest
        self.stats.results += 1
        on_result(index, result)
        if self.chaos is not None:
            self.chaos(self, len(done))

    def _dispatch(
        self,
        sessions: list[_WorkerSession],
        pending: list[tuple[int, JobSpec]],
        on_result: OnResult,
    ) -> None:
        order = [job for _, job in pending]
        for w, session in enumerate(sessions):
            share = partition_jobs(order, w, len(sessions))
            assigned = [(pending[local][0], job) for local, job in share]
            session.outstanding = dict(assigned)
            if assigned:
                session.send_assign(assigned)

        monitor = self._make_monitor()
        self.monitor = monitor
        for session in sessions:
            monitor.watch(session.peer)
        by_peer = {session.peer: session for session in sessions}
        expected = {index: job_digest(job) for index, job in pending}
        done: dict[int, str] = {}
        selector = selectors.DefaultSelector()
        for session in sessions:
            selector.register(
                session.channel.sock, selectors.EVENT_READ, session
            )
        try:
            while len(done) < len(pending):
                events = selector.select(timeout=self.check_every)
                for key, _ in events:
                    session = key.data
                    for frame in session.channel.drain():
                        self._handle_frame(
                            session, frame, monitor, done, expected,
                            on_result,
                        )
                    if not session.channel.open:
                        selector.unregister(session.channel.sock)
                for peer in monitor.check():
                    self._declare_failed(by_peer[peer], sessions, done)
                if len(done) < len(pending) and all(
                    s.failed for s in sessions
                ):
                    raise SimulationError(
                        f"all {len(sessions)} remote workers failed with "
                        f"{len(pending) - len(done)} job(s) unfinished "
                        f"(failed: {', '.join(self.stats.failed)})"
                    )
        finally:
            selector.close()

    def _cleanup(self, sessions: list[_WorkerSession]) -> None:
        told = set()
        for session in sessions:
            if session.channel.open:
                if session.channel.send({"kind": "shutdown"}):
                    told.add(id(session.proc))
            session.channel.close()
        for proc in self.processes:
            # A worker that never got (or could not receive) a shutdown
            # frame is blocked reading the wire; don't grant it the
            # graceful-exit grace period, terminate it outright.
            if id(proc) not in told:
                proc.terminate()
            try:
                proc.wait(timeout=5)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait()

    def submit(self, pending: Pending, on_result: OnResult) -> None:
        if not pending:
            return
        self.stats = RemoteStats()
        sessions: list[_WorkerSession] = []
        try:
            sessions = self._connect_workers()
            self._dispatch(sessions, list(pending), on_result)
        finally:
            # Runs even when _connect_workers raises: sessions is then
            # empty but spawned subprocesses still need killing/reaping.
            self._cleanup(sessions)
