"""The unified execution layer: deterministic fan-out for the whole repo.

Everything in this repository that runs *many independent simulations* —
multi-seed sweeps (:mod:`repro.analysis.sweep`), generated fuzz scenarios
(:mod:`repro.analysis.fuzz`), monitored CLI runs — describes its work as
frozen :class:`JobSpec` jobs and hands the plan to :func:`run_jobs`. One
core owns planning-order results, executor dispatch, streaming delivery,
and checkpoint/resume; the subsystems are thin planners over it.

The pieces, and where they live:

========================  ==================================================
:class:`JobSpec`          one pure unit of work (``repro.exec.job``)
:class:`Executor`         serial / parallel / inproc / remote engines
                          (``repro.exec.executors``,
                          ``repro.exec.remote``)
:class:`ResultSink`       in-order streaming consumers (``repro.exec.sink``)
:class:`Journal`          JSONL checkpoint/resume, partition + digest-checked
                          merge (``repro.exec.journal``)
:func:`run_jobs`          the one fan-out loop (``repro.exec.core``)
========================  ==================================================

Design invariant, inherited from the paper's methodology: every job is a
pure function of its spec, so *nothing* in this layer — backend choice,
chunking, shard stepping, a kill and resume, sink attachment — can change
a result, only when and where it is computed. The tests pin that down as
bit-identical digests across every axis.
"""

from repro.exec.core import run_jobs
from repro.exec.executors import (
    EXEC_BACKENDS,
    Executor,
    InprocExecutor,
    ParallelExecutor,
    SerialExecutor,
    effective_backend,
    make_executor,
)
from repro.exec.job import (
    JobSpec,
    job_digest,
    plan_digest,
    resolve_kind,
    run_job,
    shard_form,
)
from repro.exec.journal import (
    CampaignJournal,
    Journal,
    merge_journals,
    partition_jobs,
)
from repro.exec.remote import (
    RemoteExecutor,
    RemoteStats,
    parse_worker_spec,
    run_worker,
)
from repro.exec.sink import CallbackSink, CollectSink, ResultSink, TeeSink

__all__ = [
    "JobSpec",
    "job_digest",
    "plan_digest",
    "resolve_kind",
    "run_job",
    "shard_form",
    "Executor",
    "SerialExecutor",
    "ParallelExecutor",
    "InprocExecutor",
    "RemoteExecutor",
    "RemoteStats",
    "parse_worker_spec",
    "run_worker",
    "EXEC_BACKENDS",
    "effective_backend",
    "make_executor",
    "ResultSink",
    "CollectSink",
    "CallbackSink",
    "TeeSink",
    "Journal",
    "CampaignJournal",
    "partition_jobs",
    "merge_journals",
    "run_jobs",
]
