"""Executors: interchangeable engines that run a plan of jobs.

One interface, four engines — the former private backends of the sweep
and fuzz subsystems, now shared by everything that fans out work:

* :class:`SerialExecutor` — each job to completion, in order, in this
  process. The reference implementation the others must match.
* :class:`ParallelExecutor` — a ``multiprocessing`` pool; jobs ship to
  workers by pickling and results stream back in planned order.
* :class:`~repro.exec.remote.RemoteExecutor` — multi-host dispatch over
  TCP: the plan is partitioned with
  :func:`~repro.exec.journal.partition_jobs`, each share shipped to a
  worker process (``python -m repro worker``), and completed results
  streamed back as journal-shaped lines while the coordinator watches
  the workers with the repo's own failure detectors.
* :class:`InprocExecutor` — in this process, with scheduler heap storage
  recycled between jobs via
  :class:`~repro.sim.scheduler.SchedulerStoragePool`. Jobs that advertise
  a shard form (see :mod:`repro.exec.job`) are stepped cooperatively
  through :class:`~repro.sim.multiworld.ShardedRunner` — the multi-world
  engine is the *implementation* of this executor, not a separate code
  path — so many simulated worlds are in flight at once while spawn and
  pickle costs stay at zero.

Every executor delivers ``(index, result)`` pairs to a callback as jobs
complete; completion *order* is the executor's own business (round-robin
shard stepping finishes out of order by design) and is laundered back
into planned order by :func:`repro.exec.core.run_jobs` before results
reach sinks or callers. Because job runners are pure, the executor choice
can never change the results — only how fast, and in what interleaving,
they arrive.
"""

from __future__ import annotations

import multiprocessing
import sys
from typing import Any, Callable, Sequence

from repro.errors import SimulationError
from repro.exec.job import JobSpec, run_job, shard_form

OnResult = Callable[[int, Any], None]
Pending = Sequence[tuple[int, JobSpec]]

EXEC_BACKENDS = ("serial", "parallel", "inproc", "remote")
"""Registered executor names, in reference order."""


class Executor:
    """Runs ``(index, job)`` pairs, reporting each result to a callback."""

    name = "abstract"

    def submit(self, pending: Pending, on_result: OnResult) -> None:
        """Execute every pending job, calling ``on_result(index, result)``
        exactly once per job, in any order."""
        raise NotImplementedError


class SerialExecutor(Executor):
    """One job after another in this process; the reference executor.

    ``run`` substitutes the job-running callable — the hook an in-process
    caller (e.g. the monitor CLI, which wires live printing into the run)
    uses to observe a job from inside while keeping journal/sink handling
    in the core. The substitute must return exactly what
    :func:`~repro.exec.job.run_job` would.
    """

    name = "serial"

    def __init__(self, run: Callable[[JobSpec], Any] | None = None):
        self._run = run or run_job

    def submit(self, pending: Pending, on_result: OnResult) -> None:
        for index, job in pending:
            on_result(index, self._run(job))


class ParallelExecutor(Executor):
    """A ``multiprocessing`` pool of worker processes.

    Jobs are pickled to workers and executed by
    :func:`~repro.exec.job.run_job`; results stream back in planned order
    (ordered ``imap``), so the first results reach the journal and sinks
    while later chunks are still computing. ``chunksize`` trades dispatch
    overhead against streaming granularity exactly as it did in the old
    sweep pool; the default matches it.
    """

    name = "parallel"

    def __init__(self, workers: int = 2, chunksize: int | None = None):
        self.workers = max(workers, 1)
        self.chunksize = chunksize

    def submit(self, pending: Pending, on_result: OnResult) -> None:
        if not pending:
            return
        # Prefer fork only on Linux: it is cheap there, while macOS
        # defaults to spawn for a reason (forked children can abort in
        # system frameworks). Results are identical either way — every
        # job derives all state from its own pickled spec.
        ctx = multiprocessing.get_context(
            "fork" if sys.platform == "linux" else None
        )
        chunk = self.chunksize or max(1, len(pending) // (4 * self.workers))
        jobs = [job for _, job in pending]
        with ctx.Pool(processes=self.workers) as pool:
            for (index, _), result in zip(
                pending, pool.imap(run_job, jobs, chunksize=chunk)
            ):
                on_result(index, result)


class InprocExecutor(Executor):
    """In-process execution over the sharded multi-world engine.

    When every pending job advertises a shard form, their worlds are
    built and stepped by the wrapped
    :class:`~repro.sim.multiworld.ShardedRunner` (its stepping policy,
    quantum, and window decide the interleaving; results are identical
    for all of them). Jobs without a shard form — experiment drivers that
    build and run worlds internally — run whole, one after another,
    inside the same :class:`~repro.sim.scheduler.SchedulerStoragePool`,
    which is exactly the sequential degenerate of shard stepping: the
    pool still recycles every world's heap storage into the next.

    Args:
        runner: the engine to step shard-form jobs with; a fresh
            sequential :class:`~repro.sim.multiworld.ShardedRunner` when
            omitted. Callers that want stepping/quantum/window control or
            post-run :class:`~repro.sim.multiworld.RunnerStats` pass
            their own.
        run: substitute job-running callable for the whole-job path (see
            :class:`SerialExecutor`).
    """

    name = "inproc"

    def __init__(
        self,
        runner=None,
        run: Callable[[JobSpec], Any] | None = None,
    ):
        from repro.sim.multiworld import ShardedRunner

        self.runner = runner if runner is not None else ShardedRunner()
        self._run = run or run_job

    def submit(self, pending: Pending, on_result: OnResult) -> None:
        if not pending:
            return
        forms = [shard_form(job) for _, job in pending]
        if all(form is not None for form in forms):
            self._submit_shards(pending, forms, on_result)
        else:
            self._submit_whole(pending, on_result)

    def _submit_shards(self, pending, forms, on_result: OnResult) -> None:
        specs = []
        dispatch: dict[int, tuple[int, Any]] = {}
        for (index, _), (spec, collect) in zip(pending, forms):
            specs.append(spec)
            dispatch[id(spec)] = (index, collect)

        def collect_and_report(spec, world):
            index, collect = dispatch[id(spec)]
            result = collect(spec, world)
            on_result(index, result)
            return result

        self.runner.run(specs, collect=collect_and_report)

    def _submit_whole(self, pending, on_result: OnResult) -> None:
        from repro.sim.scheduler import shared_scheduler_storage

        with shared_scheduler_storage() as pool:
            for index, job in pending:
                on_result(index, self._run(job))
                pool.reclaim()


def effective_backend(backend: str, n_jobs: int, workers: int) -> str:
    """Backend-policy normalisation shared by every planner.

    ``"parallel"`` degenerates to ``"serial"`` unless there is both more
    than one job and more than one worker: a one-worker pool (or a pool
    for a single job) is pure spawn/pickle overhead for bit-identical
    results. Every other backend passes through unchanged — including
    unknown names, which :func:`make_executor` rejects.
    """
    if backend == "parallel" and not (n_jobs > 1 and workers > 1):
        return "serial"
    return backend


def make_executor(
    backend: str,
    workers: int = 1,
    chunksize: int | None = None,
    runner=None,
    run: Callable[[JobSpec], Any] | None = None,
    remote_workers: int | str | Sequence[str] | None = None,
) -> Executor:
    """Build a registered executor by name.

    ``remote_workers`` configures the ``"remote"`` backend's fleet (see
    :func:`~repro.exec.remote.parse_worker_spec`): an integer spawns that
    many local worker subprocesses; a ``"host:port,host:port"`` string
    dials out to workers already listening. It is rejected for every
    other backend rather than silently ignored.
    """
    if remote_workers is not None and backend != "remote":
        raise SimulationError(
            "remote worker addresses only apply to the 'remote' backend "
            f"(got backend {backend!r})"
        )
    if backend == "serial":
        return SerialExecutor(run=run)
    if backend == "parallel":
        if run is not None:
            raise SimulationError(
                "the parallel executor cannot take a local run override "
                "(jobs execute in worker processes)"
            )
        return ParallelExecutor(workers=workers, chunksize=chunksize)
    if backend == "inproc":
        return InprocExecutor(runner=runner, run=run)
    if backend == "remote":
        if run is not None:
            raise SimulationError(
                "the remote executor cannot take a local run override "
                "(jobs execute on remote workers)"
            )
        # Imported lazily: the remote module pulls in sockets, selectors
        # and the detectors package, none of which the in-process
        # backends need.
        from repro.exec.remote import RemoteExecutor, parse_worker_spec

        return RemoteExecutor(**parse_worker_spec(remote_workers))
    raise SimulationError(
        f"unknown execution backend {backend!r}; choose from "
        f"{', '.join(EXEC_BACKENDS)}"
    )
