"""JSONL journals: checkpoint/resume for long deterministic runs.

A journal is an append-only JSONL file recording one result line per
completed job, plus a header line binding the file to its *plan* (the
ordered job list, hashed with :func:`repro.exec.job.plan_digest`). Because
every job is a pure function of its spec, a journaled result **is** the
result — resuming a killed run restores the recorded objects bit-for-bit
and re-executes only the jobs with no line, so the merged output (and any
digest over it) is identical to an uninterrupted run's.

File format (one JSON object per line)::

    {"kind": "header", "version": 1, "plan": "<sha256>", "total": N}
    {"kind": "result", "index": 3, "job": "<sha256>", "data": "<base64>"}

``data`` is the pickled result, base64-armoured so the line stays valid
JSON. Pickle is the right serialisation here: journal files are local
checkpoints written and read by the same codebase, the results are the
same frozen dataclasses the subprocess pool already pickles, and exact
object restoration is precisely what digest-identical resume requires.
Journals are not an interchange format; do not load journals from
untrusted sources.

Crash tolerance: every result line is flushed as written, and a load
tolerates a torn final line (the unflushed victim of a kill) by dropping
it. A resume first *rewrites* the file from its salvageable entries —
into a temp file that is fsynced and atomically renamed over the
original, so a kill during the rewrite itself leaves either the old
salvageable journal or the complete new one, never less — and the append
stream after a torn line can never corrupt the journal.

Multi-host readiness: :func:`partition_jobs` deterministically assigns a
case subset to ``(worker_id, n_workers)``, and :func:`merge_journals`
reassembles per-worker journals into one full result list, checking every
entry's job hash against the plan and refusing holes or conflicting
duplicates — so a future remote dispatch backend only has to ship jobs
out and journal lines back.
"""

from __future__ import annotations

import base64
import json
import os
import pickle
from pathlib import Path
from typing import IO, Any, Sequence

from repro import _core
from repro.errors import SimulationError
from repro.exec.job import JobSpec, job_digest, plan_digest

JOURNAL_VERSION = 1


def _encode(result: Any) -> str:
    return base64.b64encode(
        pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)
    ).decode("ascii")


def _decode(data: str) -> Any:
    return pickle.loads(base64.b64decode(data.encode("ascii")))


class Journal:
    """One run's checkpoint file; see the module docstring for format.

    Typical use is through :func:`repro.exec.core.run_jobs`
    (``journal=...``, ``resume=...``); direct use::

        with Journal(path) as journal:
            cached = journal.begin(jobs, resume=True)  # {} on a fresh file
            ... run the jobs not in `cached`, calling journal.record(...)

    A journal is a context manager so the append handle ``begin`` opens
    is closed deterministically on any exit path; ``close()`` remains
    available (and idempotent) for callers managing the lifecycle by
    hand.
    """

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self._fh: IO[str] | None = None

    def __enter__(self) -> "Journal":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------

    def load(self, jobs: Sequence[JobSpec]) -> dict[int, Any]:
        """Salvage completed results for this plan; ``{}`` if no file.

        Raises :class:`~repro.errors.SimulationError` if the file exists
        but belongs to a different plan, or an entry's job hash does not
        match the plan's job at that index.
        """
        return {
            index: result
            for index, (_, result) in self.entries(jobs).items()
        }

    def entries(
        self, jobs: Sequence[JobSpec]
    ) -> dict[int, tuple[str, Any]]:
        """Salvaged entries as ``{index: (raw payload, decoded result)}``.

        The raw payload string is kept alongside the decoded object so
        duplicate detection (here and in :func:`merge_journals`) compares
        the journal's actual bytes, and the resume rewrite copies entries
        verbatim instead of pickle round-tripping every result. Reads the
        file in one shot and holds no handle afterwards; validation is
        exactly :meth:`load`'s (plan binding, per-entry job hashes,
        tolerated torn final line).
        """
        if not self.path.exists():
            return {}
        plan = plan_digest(jobs)
        cached: dict[int, tuple[str, Any]] = {}
        try:
            lines = self.path.read_text().splitlines()
        except OSError as exc:
            raise SimulationError(
                f"cannot read journal {self.path}: {exc}"
            ) from exc
        if not lines:
            return {}
        for lineno, line in enumerate(lines):
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                if lineno == len(lines) - 1:
                    continue  # torn final line: the kill's half-write
                raise SimulationError(
                    f"journal {self.path}: corrupt line {lineno + 1} "
                    "(only the final line may be torn)"
                ) from None
            kind = entry.get("kind")
            if lineno == 0:
                if kind != "header":
                    raise SimulationError(
                        f"journal {self.path}: missing header line"
                    )
                if entry.get("version") != JOURNAL_VERSION:
                    raise SimulationError(
                        f"journal {self.path}: unsupported version "
                        f"{entry.get('version')!r}"
                    )
                if entry.get("plan") != plan:
                    raise SimulationError(
                        f"journal {self.path} was written for a different "
                        "plan (experiment, seeds, params, or config "
                        "changed); delete it or drop --resume"
                    )
                continue
            if kind != "result":
                raise SimulationError(
                    f"journal {self.path}: unknown entry kind {kind!r} "
                    f"on line {lineno + 1}"
                )
            # Valid JSON is not yet a valid entry: a kill (or a foreign
            # writer) can leave a line that parses but lacks fields or
            # carries an undecodable payload. Surface every such case as
            # the same friendly corrupt-line error the parse path gets.
            try:
                index = entry["index"]
                job_hash = entry["job"]
                data = entry["data"]
            except KeyError as exc:
                raise SimulationError(
                    f"journal {self.path}: corrupt line {lineno + 1} "
                    f"(result entry missing field {exc.args[0]!r})"
                ) from None
            if not isinstance(index, int) or not 0 <= index < len(jobs):
                raise SimulationError(
                    f"journal {self.path}: result index {index!r} outside "
                    f"the {len(jobs)}-job plan"
                )
            if job_hash != job_digest(jobs[index]):
                raise SimulationError(
                    f"journal {self.path}: job hash mismatch at index "
                    f"{index}; the journal belongs to a different plan"
                )
            try:
                result = _decode(data)
            except Exception as exc:
                raise SimulationError(
                    f"journal {self.path}: corrupt line {lineno + 1} "
                    f"(undecodable payload at index {index}: {exc})"
                ) from None
            if index in cached and data != cached[index][0]:
                raise SimulationError(
                    f"journal {self.path}: conflicting duplicate entries "
                    f"for index {index}"
                )
            cached[index] = (data, result)
        return cached

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------

    def begin(
        self, jobs: Sequence[JobSpec], resume: bool = False
    ) -> dict[int, Any]:
        """Open the journal for appending; return salvaged results.

        With ``resume`` the file is first loaded (validating it against
        ``jobs``) and rewritten cleanly from its salvageable entries —
        written to a sibling temp file and atomically renamed into
        place, so a second kill at any point leaves either the old
        salvageable file or the complete rewrite, never less — and
        appends never follow a torn line. Entries are copied verbatim
        (no pickle round trip). Without ``resume`` any existing file is
        truncated and the run starts fresh.
        """
        cached = self.entries(jobs) if resume else {}
        header = {
            "kind": "header",
            "version": JOURNAL_VERSION,
            "plan": plan_digest(jobs),
            "total": len(jobs),
            # Informational: which event core wrote this file. Results
            # are bit-identical across cores, so resume does not (and
            # must not) validate it — a journal written under one core
            # resumes under the other.
            "core": _core.ACTIVE_IMPL,
        }
        tmp = self.path.with_name(self.path.name + ".rewrite")
        try:
            with tmp.open("w") as fh:
                fh.write(json.dumps(header) + "\n")
                for index in sorted(cached):
                    self._write_entry(
                        fh, index, jobs[index], cached[index][0]
                    )
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, self.path)
            self._fh = self.path.open("a")
        except OSError as exc:
            raise SimulationError(
                f"cannot write journal {self.path}: {exc}"
            ) from exc
        return {index: result for index, (_, result) in cached.items()}

    def record(self, index: int, job: JobSpec, result: Any) -> None:
        """Append one completed result; flushed so a kill loses at most
        the line being written."""
        if self._fh is None:
            raise SimulationError(
                f"journal {self.path} not open; call begin() first"
            )
        try:
            self._write_entry(self._fh, index, job, _encode(result))
            self._fh.flush()
        except OSError as exc:
            raise SimulationError(
                f"cannot write journal {self.path}: {exc}"
            ) from exc

    def _write_entry(self, fh, index: int, job: JobSpec, data: str) -> None:
        entry = {
            "kind": "result",
            "index": index,
            "job": job_digest(job),
            "data": data,
        }
        fh.write(json.dumps(entry) + "\n")

    def close(self) -> None:
        """Close the file handle (idempotent)."""
        if self._fh is not None:
            self._fh.close()
            self._fh = None


# ----------------------------------------------------------------------
# Campaign journals (adaptive runs, whose plans unfold batch by batch)
# ----------------------------------------------------------------------


class CampaignJournal:
    """Checkpoint file for runs whose job plan is not known upfront.

    An adaptive fuzz campaign derives batch *k*'s jobs from the coverage
    of batches ``0..k-1`` — there is no full plan to digest at open time,
    so a :class:`Journal` header cannot bind the file. A campaign journal
    binds the header to a *campaign digest* instead (a content hash of
    the campaign inputs — seed, count, batch size, config) and defers
    per-entry job-hash validation to the driver, which recomputes each
    batch's jobs during resume and checks the salvaged entries against
    them (the entries themselves still carry the same
    :func:`~repro.exec.job.job_digest` result lines a plain journal
    uses).

    Extra line kind: after each batch the driver records a **coverage
    checkpoint**, so a resume can cross-check that its recomputed
    coverage fold reproduces the original run's byte for byte::

        {"kind": "coverage", "batch": 2, "upto": 150, "digest": "<sha256>"}

    Crash tolerance is the plain journal's: flushed result lines, a
    tolerated torn final line, and an atomic rewrite on resume.
    """

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self._fh: IO[str] | None = None

    def _load_entries(
        self, campaign: str, total: int
    ) -> tuple[dict[int, tuple[str, str, Any]], dict[int, dict]]:
        """Salvaged lines: ``({index: (job hash, raw data, result)},
        {batch: coverage entry})``; empty on a missing file."""
        if not self.path.exists():
            return {}, {}
        try:
            lines = self.path.read_text().splitlines()
        except OSError as exc:
            raise SimulationError(
                f"cannot read journal {self.path}: {exc}"
            ) from exc
        if not lines:
            return {}, {}
        cached: dict[int, tuple[str, str, Any]] = {}
        checkpoints: dict[int, dict] = {}
        for lineno, line in enumerate(lines):
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                if lineno == len(lines) - 1:
                    continue  # torn final line: the kill's half-write
                raise SimulationError(
                    f"journal {self.path}: corrupt line {lineno + 1} "
                    "(only the final line may be torn)"
                ) from None
            kind = entry.get("kind")
            if lineno == 0:
                if kind != "header":
                    raise SimulationError(
                        f"journal {self.path}: missing header line"
                    )
                if entry.get("version") != JOURNAL_VERSION:
                    raise SimulationError(
                        f"journal {self.path}: unsupported version "
                        f"{entry.get('version')!r}"
                    )
                if entry.get("campaign") != campaign:
                    raise SimulationError(
                        f"journal {self.path} was written for a different "
                        "adaptive campaign (seed, count, batch size, or "
                        "config changed); delete it or drop --resume"
                    )
                continue
            if kind == "coverage":
                try:
                    batch = entry["batch"]
                    entry["upto"], entry["digest"]
                except KeyError as exc:
                    raise SimulationError(
                        f"journal {self.path}: corrupt line {lineno + 1} "
                        f"(coverage entry missing field {exc.args[0]!r})"
                    ) from None
                checkpoints[batch] = entry
                continue
            if kind != "result":
                raise SimulationError(
                    f"journal {self.path}: unknown entry kind {kind!r} "
                    f"on line {lineno + 1}"
                )
            try:
                index = entry["index"]
                job_hash = entry["job"]
                data = entry["data"]
            except KeyError as exc:
                raise SimulationError(
                    f"journal {self.path}: corrupt line {lineno + 1} "
                    f"(result entry missing field {exc.args[0]!r})"
                ) from None
            if not isinstance(index, int) or not 0 <= index < total:
                raise SimulationError(
                    f"journal {self.path}: result index {index!r} outside "
                    f"the {total}-scenario campaign"
                )
            try:
                result = _decode(data)
            except Exception as exc:
                raise SimulationError(
                    f"journal {self.path}: corrupt line {lineno + 1} "
                    f"(undecodable payload at index {index}: {exc})"
                ) from None
            if index in cached and data != cached[index][1]:
                raise SimulationError(
                    f"journal {self.path}: conflicting duplicate entries "
                    f"for index {index}"
                )
            cached[index] = (job_hash, data, result)
        return cached, checkpoints

    def begin(
        self, campaign: str, total: int, resume: bool = False
    ) -> tuple[dict[int, tuple[str, Any]], dict[int, dict]]:
        """Open for appending; return salvaged results and checkpoints.

        With ``resume`` the file is loaded (validating the campaign
        binding) and atomically rewritten from its salvageable entries,
        exactly like :meth:`Journal.begin`. The returned results map is
        ``{index: (job hash, result)}`` — the caller validates each job
        hash when it reconstructs that index's job. Without ``resume``
        any existing file is truncated.
        """
        cached, checkpoints = (
            self._load_entries(campaign, total) if resume else ({}, {})
        )
        header = {
            "kind": "header",
            "version": JOURNAL_VERSION,
            "campaign": campaign,
            "total": total,
            # Informational only — never validated on resume (see
            # Journal.begin).
            "core": _core.ACTIVE_IMPL,
        }
        tmp = self.path.with_name(self.path.name + ".rewrite")
        try:
            with tmp.open("w") as fh:
                fh.write(json.dumps(header) + "\n")
                for index in sorted(cached):
                    job_hash, data, _ = cached[index]
                    fh.write(
                        json.dumps(
                            {
                                "kind": "result",
                                "index": index,
                                "job": job_hash,
                                "data": data,
                            }
                        )
                        + "\n"
                    )
                for batch in sorted(checkpoints):
                    fh.write(json.dumps(checkpoints[batch]) + "\n")
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, self.path)
            self._fh = self.path.open("a")
        except OSError as exc:
            raise SimulationError(
                f"cannot write journal {self.path}: {exc}"
            ) from exc
        return (
            {
                index: (job_hash, result)
                for index, (job_hash, _, result) in cached.items()
            },
            checkpoints,
        )

    def record(self, index: int, job: JobSpec, result: Any) -> None:
        """Append one completed result (flushed, like Journal.record)."""
        if self._fh is None:
            raise SimulationError(
                f"journal {self.path} not open; call begin() first"
            )
        entry = {
            "kind": "result",
            "index": index,
            "job": job_digest(job),
            "data": _encode(result),
        }
        try:
            self._fh.write(json.dumps(entry) + "\n")
            self._fh.flush()
        except OSError as exc:
            raise SimulationError(
                f"cannot write journal {self.path}: {exc}"
            ) from exc

    def record_coverage(self, batch: int, upto: int, digest: str) -> None:
        """Append one batch's coverage checkpoint (flushed)."""
        if self._fh is None:
            raise SimulationError(
                f"journal {self.path} not open; call begin() first"
            )
        entry = {
            "kind": "coverage",
            "batch": batch,
            "upto": upto,
            "digest": digest,
        }
        try:
            self._fh.write(json.dumps(entry) + "\n")
            self._fh.flush()
        except OSError as exc:
            raise SimulationError(
                f"cannot write journal {self.path}: {exc}"
            ) from exc

    def close(self) -> None:
        """Close the file handle (idempotent)."""
        if self._fh is not None:
            self._fh.close()
            self._fh = None


# ----------------------------------------------------------------------
# Multi-host partition / merge (the remote-dispatch seam)
# ----------------------------------------------------------------------


def partition_jobs(
    jobs: Sequence[JobSpec], worker_id: int, n_workers: int
) -> list[tuple[int, JobSpec]]:
    """Worker ``worker_id``'s strided share of the plan, with indices.

    Strided (round-robin) assignment keeps every worker's finished
    results spread across the whole index range, so the in-order
    streaming prefix at the merge point grows steadily instead of
    stalling on one worker's contiguous block. Deterministic: the
    partition depends only on ``(len(jobs), worker_id, n_workers)``.
    """
    if n_workers < 1:
        raise SimulationError(f"n_workers must be >= 1, got {n_workers}")
    if not 0 <= worker_id < n_workers:
        raise SimulationError(
            f"worker_id must be in [0, {n_workers}), got {worker_id}"
        )
    return [
        (index, job)
        for index, job in enumerate(jobs)
        if index % n_workers == worker_id
    ]


def merge_journals(
    jobs: Sequence[JobSpec], paths: Sequence[str | Path]
) -> list[Any]:
    """Reassemble per-worker journals into the full, ordered result list.

    Every journal is validated against the plan (header digest and
    per-entry job hashes); overlapping entries must agree bit-for-bit;
    a missing index is an error naming it. The returned list is in
    planned order, so any digest over it matches a single-host run's.

    An empty plan with no journals merges to ``[]`` — the degenerate a
    zero-case sweep hands the remote backend.
    """
    if not jobs and not paths:
        return []
    merged: dict[int, tuple[str, Any]] = {}
    for path in paths:
        with Journal(path) as journal:
            if not journal.path.exists():
                raise SimulationError(f"journal {path} does not exist")
            for index, (data, result) in journal.entries(jobs).items():
                if index in merged and merged[index][0] != data:
                    raise SimulationError(
                        f"journals disagree on index {index}; "
                        "refusing to merge"
                    )
                merged[index] = (data, result)
    missing = [i for i in range(len(jobs)) if i not in merged]
    if missing:
        preview = ", ".join(map(str, missing[:5]))
        raise SimulationError(
            f"merge incomplete: {len(missing)} of {len(jobs)} jobs have "
            f"no journaled result (first missing: {preview})"
        )
    return [merged[i][1] for i in range(len(jobs))]
