"""Job descriptions: the unit of work the execution layer fans out.

A :class:`JobSpec` is a frozen, picklable description of one deterministic
unit of work — one sweep case, one fuzz scenario, one monitored run. It
carries no callables and no open resources: ``kind`` is a dotted
``"package.module:function"`` entrypoint string, and the referenced
function (the *job runner*) is resolved by import at execution time, in
whatever process the executor chose. That is what makes the same job
equally runnable by the serial loop, a subprocess pool worker, the
in-process sharded engine — or, later, a remote host that received the
job over the wire.

Every job runner must be a **pure function of its job**: all
nondeterminism derives from ``(spec_id, seed, params)``, so executing a
job twice — or on two different backends — yields equal results. The
journal (:mod:`repro.exec.journal`) and the bit-identical-digest
guarantees of sweep and fuzz rest entirely on that contract.

A job runner may additionally advertise a *shard form* by carrying a
``to_shard`` attribute::

    def run_my_job(job: JobSpec) -> Result: ...
    def _my_job_shard(job):  # -> (ShardSpec, collect)
        ...
    run_my_job.to_shard = _my_job_shard

``to_shard(job)`` returns a ``(ShardSpec, collect)`` pair; the ``inproc``
executor uses it to step many jobs' worlds cooperatively through
:class:`~repro.sim.multiworld.ShardedRunner` instead of running each job
to completion in turn. The two forms must produce equal results — shard
stepping is an executor's freedom, never an observable.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from importlib import import_module
from typing import Any, Callable, Sequence

from repro.errors import SimulationError


@dataclass(frozen=True)
class JobSpec:
    """One deterministic unit of work.

    Args:
        kind: job-runner entrypoint as ``"package.module:function"``.
            Resolved with :func:`resolve_kind` in the executing process.
        spec_id: the caller's identifier for *what* to run (an experiment
            id, a scenario family, ...); meaning is owned by the runner.
        seed: the root of all randomness in the job. Two jobs that differ
            only in seed explore two runs of the same configuration.
        params: insertion-ordered ``(name, value)`` pairs of plain,
            picklable values with content-stable ``repr``; the runner's
            keyword arguments, conceptually.
    """

    kind: str
    spec_id: str
    seed: int
    params: tuple[tuple[str, Any], ...] = field(default=())

    def param(self, name: str, default: Any = None) -> Any:
        """The value of parameter ``name`` (first occurrence wins)."""
        for key, value in self.params:
            if key == name:
                return value
        return default


_RESOLVED: dict[str, Callable[[JobSpec], Any]] = {}


def resolve_kind(kind: str) -> Callable[[JobSpec], Any]:
    """Import and return the job runner named by a ``kind`` string.

    Resolution is cached per process; a malformed kind or a missing
    attribute raises :class:`~repro.errors.SimulationError` naming it.
    """
    try:
        return _RESOLVED[kind]
    except KeyError:
        pass
    module_name, sep, attr = kind.partition(":")
    if not sep or not module_name or not attr:
        raise SimulationError(
            f"malformed job kind {kind!r}; expected 'package.module:function'"
        )
    try:
        module = import_module(module_name)
    except ImportError as exc:
        raise SimulationError(
            f"job kind {kind!r} names an unimportable module: {exc}"
        ) from exc
    try:
        runner = getattr(module, attr)
    except AttributeError:
        raise SimulationError(
            f"job kind {kind!r}: module {module_name!r} has no "
            f"attribute {attr!r}"
        ) from None
    if not callable(runner):
        raise SimulationError(f"job kind {kind!r} is not callable")
    _RESOLVED[kind] = runner
    return runner


def run_job(job: JobSpec) -> Any:
    """Execute one job in this process and return its result.

    Module-level by design: the parallel executor ships ``JobSpec``
    instances to worker processes by pickling and calls this there.
    """
    return resolve_kind(job.kind)(job)


def shard_form(job: JobSpec):
    """The job's ``(ShardSpec, collect)`` pair, or ``None``.

    ``None`` means the runner does not advertise a shard form and the
    ``inproc`` executor must fall back to running the job whole.
    """
    to_shard = getattr(resolve_kind(job.kind), "to_shard", None)
    if to_shard is None:
        return None
    return to_shard(job)


def job_digest(job: JobSpec) -> str:
    """Content hash of one job (the journal's per-entry identity check).

    Stable across processes because every ``JobSpec`` field is required
    to have a content-stable ``repr``.
    """
    return hashlib.sha256(repr(job).encode()).hexdigest()


def plan_digest(jobs: Sequence[JobSpec]) -> str:
    """Content hash of an ordered job list (the journal's plan identity).

    Order-sensitive on purpose: the plan *is* the result order, so two
    plans that run the same jobs in different orders are different plans.
    """
    digest = hashlib.sha256()
    for job in jobs:
        digest.update(repr(job).encode())
    return digest.hexdigest()
