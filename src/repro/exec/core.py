"""The execution core: plan in, deterministic ordered results out.

:func:`run_jobs` is the one fan-out loop in the repository. It takes an
ordered plan of :class:`~repro.exec.job.JobSpec` jobs and an executor,
and owns everything the three former per-subsystem loops each reimplemented:

* **checkpointing** — with a journal, every completed result is recorded
  as it lands; with ``resume``, journaled results are restored instead of
  re-executed, and the final list is bit-identical to an uninterrupted
  run's (pure jobs + exact restoration; see :mod:`repro.exec.journal`);
* **order laundering** — executors report completions in whatever order
  their engine produces them; the core buffers and releases the longest
  finished prefix, so sinks always observe planned order
  (:mod:`repro.exec.sink`);
* **collection** — the return value is the full result list in planned
  order, whatever backend ran it.

Sweep rows, fuzz outcomes, and monitored runs are all just payloads here.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Sequence

from repro.errors import SimulationError
from repro.exec.executors import Executor, SerialExecutor
from repro.exec.job import JobSpec
from repro.exec.journal import Journal, partition_jobs
from repro.exec.sink import ResultSink

_UNSET = object()


def run_jobs(
    jobs: Sequence[JobSpec],
    executor: Executor | None = None,
    sink: ResultSink | None = None,
    journal: Journal | str | Path | None = None,
    resume: bool = False,
    partition: tuple[int, int] | None = None,
) -> list[Any]:
    """Execute a plan; return its results in planned order.

    Args:
        jobs: the ordered plan. Order is part of the plan's identity —
            it is the result order, the sink's emission order, and the
            journal's plan digest.
        executor: engine to run on (default: :class:`SerialExecutor`).
        sink: optional streaming consumer; receives every result this
            call owns in planned order as the finished prefix grows,
            including results restored from a resumed journal.
            ``open(total)`` announces exactly the number of ``emit``
            calls that will follow — under ``partition`` that is the
            worker's share (plus restored results), not the plan size;
            ``emit`` still carries full-plan indices.
        journal: optional checkpoint file (path or
            :class:`~repro.exec.journal.Journal`). Every completed job is
            recorded as it finishes.
        resume: restore journaled results instead of re-running their
            jobs. Requires ``journal``; the journal must match the plan.
        partition: optional ``(worker_id, n_workers)`` — execute only
            this worker's strided share of the plan (journaling it as
            usual) and return ``None`` placeholders for the rest. A
            multi-host driver runs one partition per worker, then
            reassembles with :func:`~repro.exec.journal.merge_journals`.
    """
    if resume and journal is None:
        raise SimulationError("resume=True requires a journal")
    executor = executor if executor is not None else SerialExecutor()
    owned = isinstance(journal, (str, Path))
    log = Journal(journal) if owned else journal

    # The outer try owns the journal handle from the moment begin()
    # opens it: a bad partition, a sink whose open() raises, a job
    # exception, or a sink error mid-run must all still close an owned
    # journal (the flushed lines it already holds are a valid resumable
    # checkpoint either way).
    cached: dict[int, Any] = {}
    try:
        if log is not None:
            cached = log.begin(jobs, resume=resume)

        if partition is None:
            share = list(enumerate(jobs))
        else:
            share = partition_jobs(jobs, *partition)
        pending = [(i, job) for i, job in share if i not in cached]
        mine = {i for i, _ in share} | set(cached)

        results: list[Any] = [_UNSET] * len(jobs)
        for index, result in cached.items():
            results[index] = result

        # The emit cursor: results stream to the sink in planned order,
        # each released the moment it and everything before it (that
        # this worker owns) is available.
        cursor = 0

        def release_prefix() -> None:
            nonlocal cursor
            if sink is None:
                return
            while cursor < len(jobs) and (
                cursor not in mine or results[cursor] is not _UNSET
            ):
                if cursor in mine:
                    sink.emit(cursor, jobs[cursor], results[cursor])
                cursor += 1

        def on_result(index: int, result: Any) -> None:
            results[index] = result
            if log is not None:
                log.record(index, jobs[index], result)
            release_prefix()

        if sink is not None:
            # Announce exactly what will be emitted: every index this
            # call owns (its partition share plus journal-restored
            # results). close() pairs with a *successful* open, so the
            # inner try starts only after it.
            sink.open(len(mine))
        try:
            release_prefix()  # journaled results are already available
            executor.submit(pending, on_result)
        finally:
            if sink is not None:
                sink.close()
    finally:
        if log is not None and owned:
            log.close()

    missing = [i for i, _ in share if results[i] is _UNSET]
    if missing:
        raise SimulationError(
            f"executor {executor.name!r} completed without reporting "
            f"{len(missing)} job(s) (first: {missing[0]})"
        )
    return [r if r is not _UNSET else None for r in results]
