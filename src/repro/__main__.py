"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``version`` — print the package version and which event core is active
  (the compiled ``accel`` extension or the ``pure`` Python reference; see
  :mod:`repro._core` and the ``REPRO_CORE`` environment variable).
* ``demo`` — run the quickstart scenario and print the conformance report
  plus the Theorem 5 witness verdict.
* ``bounds N [T]`` — print the Theorem 7 / Corollary 8 bounds for a
  system of N processes (all t up to the feasibility edge, or just T).
* ``experiment EID`` — run one experiment driver (e1..e11, a1) at reduced
  scale and print its table.
* ``sweep EID`` — run a deterministic multi-seed sweep of one seeded
  experiment, optionally on a process pool (``--jobs``) or fully
  in-process with recycled scheduler storage (``--backend inproc``); all
  backends print bit-identical rows and the same content digest.
  ``--early-stop`` aborts each case at its first streaming-monitor
  violation (supported drivers only, e.g. e14); ``--list`` prints the
  registered sweepable experiments.
* ``fuzz`` — generate seeded adversarial scenarios (topology, faults,
  adversary schedules, detectors, protocols) and run them through the
  sharded multi-world engine with streaming monitors, flagging any
  scenario whose streaming and batch verdicts disagree or that violates
  a property its configuration must satisfy. Fully reproducible: the
  same ``--seed``/``--count`` print the same digest.
* ``monitor EID`` — run one monitored scenario with streaming
  analyze-on-append conformance monitors, printing each safety
  violation live at the event where its verdict locks; ``--stop``
  halts the world there instead of running on.
* ``cycle K`` — run the Theorem 6 adversarial construction for a k-cycle
  and print the impossibility certificate.
* ``worker`` — serve jobs for a remote coordinator
  (``--backend remote``): dial a coordinator with ``--connect host:port``
  or await one with ``--listen host:port``. See
  :mod:`repro.exec.remote`.

``sweep``, ``fuzz``, and ``monitor`` all execute through the unified
execution layer (:mod:`repro.exec`) and share its flags: ``--backend``
picks the executor (results are bit-identical on all of them),
``--journal PATH`` checkpoints every completed case to a JSONL file as
it lands, and ``--resume`` restores journaled cases instead of
re-running them — a killed run resumed at any case boundary prints the
same digest as an uninterrupted one. ``sweep``/``fuzz`` additionally
take ``--stream`` to print each result live, in deterministic order, as
the finished prefix grows, and ``--backend remote`` with ``--workers``
(an integer to spawn local worker processes, or ``host:port,...`` to
dial out) dispatches the plan to a fleet watched by the repo's own
failure detectors — still bit-identical.
"""

from __future__ import annotations

import argparse
import ast
import sys


def _parse_param(text: str) -> tuple[str, object]:
    """Parse one ``--param name=value`` pair (value via literal_eval)."""
    name, sep, raw = text.partition("=")
    if not sep or not name:
        raise argparse.ArgumentTypeError(
            f"expected name=value, got {text!r}"
        )
    try:
        value: object = ast.literal_eval(raw)
    except (ValueError, SyntaxError):
        value = raw
    return name, value


# Mirrors repro.core.failure_models.FAILURE_MODEL_NAMES; spelled out here
# so building the argument parser stays import-light (subcommand bodies
# import the heavy modules lazily).
_FAILURE_MODELS = ("fail-stop", "crash-recovery", "byzantine-crash")


def _parse_seeds(text: str) -> list[int]:
    """``20`` means seeds 0..19; ``3,5,8`` means exactly those seeds.

    A single specific seed is the one-element list form: ``7,``.
    """
    if "," in text:
        return [int(part) for part in text.split(",") if part.strip()]
    return list(range(int(text)))


def _add_exec_flags(
    parser: "argparse.ArgumentParser",
    backends: tuple[str, ...] = ("serial", "parallel", "inproc", "remote"),
    backend_help: str = "execution backend; results are bit-identical "
    "on every backend",
) -> None:
    """The execution-layer flags shared by sweep, fuzz, and monitor."""
    parser.add_argument(
        "--backend", choices=backends, default=None, help=backend_help
    )
    if "remote" in backends:
        parser.add_argument(
            "--workers", metavar="N|HOST:PORT,...", default=None,
            help="--backend remote fleet: an integer spawns that many "
                 "local worker processes; a comma list of host:port "
                 "addresses dials out to workers started with "
                 "'python -m repro worker --listen host:port' "
                 "(default: 2 spawned workers)",
        )
    parser.add_argument(
        "--journal", metavar="PATH", default=None,
        help="checkpoint every completed case to this JSONL file as it "
             "finishes; a killed run can be resumed from it",
    )
    parser.add_argument(
        "--resume", action="store_true",
        help="restore cases already recorded in --journal instead of "
             "re-running them (the final digest is bit-identical to an "
             "uninterrupted run)",
    )


def _cmd_version(args: argparse.Namespace) -> int:
    import repro

    info = repro.core_info()
    print(f"repro {info['version']} (python {info['python']})")
    how = {
        "env": "forced via REPRO_CORE",
        "auto": "auto-detected",
    }[info["selection"]]
    print(f"event core: {info['core']} ({how})")
    if info["accel_import_error"]:
        print(f"compiled core unavailable: {info['accel_import_error']}")
    return 0


def _cmd_demo(args: argparse.Namespace) -> int:
    from repro.analysis import analyze
    from repro.core import ensure_crashes
    from repro.protocols import SfsProcess
    from repro.sim import build_world

    world = build_world(args.n, lambda: SfsProcess(t=args.t), seed=args.seed)
    world.inject_crash(args.n - 2, at=0.5)
    world.inject_suspicion(0, args.n - 2, at=1.0)
    world.adversary.hold_suspicions_about(args.n - 1, {args.n - 1})
    world.inject_suspicion(1, args.n - 1, at=1.2)
    world.scheduler.schedule_at(25.0, world.adversary.heal)
    world.run_to_quiescence()
    history = ensure_crashes(world.history())
    report = analyze(history, world.trace.quorum_records, t=args.t,
                     complete=False)
    print(f"n={args.n} t={args.t} seed={args.seed}: "
          f"{len(history)} events, crashed="
          f"{sorted(history.crashed_processes())}")
    print(report.summary())
    return 0 if report.indistinguishable_from_fail_stop else 1


def _cmd_bounds(args: argparse.Namespace) -> int:
    from repro.analysis.report import print_table
    from repro.core.bounds import bounds_table

    ts = [args.t] if args.t is not None else None
    rows = bounds_table([args.n], ts=ts)
    print_table(f"Theorem 7 / Corollary 8 bounds for n={args.n}", rows)
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    from repro.analysis import (
        print_table,
        run_a1,
        run_e1,
        run_e2,
        run_e3,
        run_e4,
        run_e5,
        run_e6,
        run_e7,
        run_e8,
        run_e9,
        run_e10,
        run_e11,
    )

    small = range(8)
    drivers = {
        "e1": lambda: run_e1(seeds=small),
        "e2": lambda: run_e2(seeds=small),
        "e3": lambda: run_e3(),
        "e4": lambda: run_e4(),
        "e5": lambda: run_e5(seeds=small),
        "e6": lambda: run_e6(),
        "e7": lambda: run_e7(seeds=range(16)),
        "e8": lambda: run_e8(seeds=small),
        "e9": lambda: run_e9(seeds=small),
        "e10": lambda: run_e10(seeds=range(4)),
        "e11": lambda: run_e11(seeds=small),
        "a1": lambda: run_a1(seeds=range(4)),
    }
    eid = args.eid.lower()
    if eid not in drivers:
        print(f"unknown experiment {args.eid!r}; choose from "
              f"{', '.join(sorted(drivers))}", file=sys.stderr)
        return 2
    rows = drivers[eid]()
    if not isinstance(rows, list):
        rows = [rows]
    print_table(f"experiment {eid.upper()} (reduced scale)", rows)
    return 0


class _StreamSink:
    """A :class:`repro.exec.ResultSink` printing results as they land.

    The execution core guarantees in-order delivery of the finished
    prefix, so these lines are final the moment they print — no later
    completion can reorder or retract them.
    """

    def __init__(self, render) -> None:
        self._render = render
        self.total = 0

    def open(self, total: int) -> None:
        self.total = total

    def emit(self, index: int, job, result) -> None:
        for line in self._render(index, self.total, job, result):
            print(line, flush=True)

    def close(self) -> None:
        pass


def _cmd_sweep(args: argparse.Namespace) -> int:
    import inspect

    from repro.analysis.sweep import (
        available_experiments,
        rows_digest,
        run_sweep,
        sweep_driver,
        sweep_table,
    )
    from repro.errors import ReproError, SimulationError

    if args.list:
        for eid in available_experiments():
            driver = sweep_driver(eid)
            doc = (driver.__doc__ or "").strip().splitlines()
            first = doc[0] if doc else ""
            print(f"{eid:<5} {driver.__module__}:{driver.__qualname__}"
                  f"  — {first}")
        return 0
    if args.eid is None:
        print("sweep: an experiment id is required (or --list to see "
              "them)", file=sys.stderr)
        return 2
    eid = args.eid.lower()
    try:
        driver = sweep_driver(eid)
    except SimulationError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    params = dict(args.param or [])
    # Reject unknown parameter names up front, so a genuine TypeError
    # inside a driver still surfaces as a traceback, not a usage error.
    # 'seeds' is excluded: the sweep runner supplies it per case.
    accepted = [
        name for name in inspect.signature(driver).parameters
        if name != "seeds"
    ]
    if args.failure_model is not None:
        # One flag, two driver spellings: model-comparing drivers (e17)
        # take a failure_models tuple, single-model drivers a string.
        if "failure_models" in accepted:
            params.setdefault("failure_models", (args.failure_model,))
        else:
            params.setdefault("failure_model", args.failure_model)
    unknown = sorted(name for name in params if name not in accepted)
    if unknown:
        print(
            f"sweep failed: {eid} does not accept parameter(s) "
            f"{', '.join(unknown)} (it accepts: "
            f"{', '.join(accepted)})",
            file=sys.stderr,
        )
        return 1
    if args.workers is not None and args.backend != "remote":
        print("sweep failed: --workers only applies to --backend remote",
              file=sys.stderr)
        return 2
    sink = None
    if args.stream:
        sink = _StreamSink(
            lambda index, total, job, case_rows: [
                f"[case {index + 1}/{total}] seed={job.seed} {row.row!r}"
                for row in case_rows
            ]
        )
    try:
        rows = run_sweep(
            eid,
            seeds=args.seeds,
            params=params,
            jobs=args.jobs,
            early_stop=args.early_stop,
            backend=args.backend,
            remote_workers=args.workers,
            journal=args.journal,
            resume=args.resume,
            sink=sink,
        )
    except ReproError as exc:
        print(f"sweep failed: {exc}", file=sys.stderr)
        return 1
    mode = " early-stop" if args.early_stop else ""
    print(f"\n== sweep {eid.upper()} ({len(args.seeds)} seeds{mode}) ==")
    print(sweep_table(rows))
    print(f"rows={len(rows)} digest={rows_digest(rows)}")
    return 0


def _cmd_monitor(args: argparse.Namespace) -> int:
    from repro.analysis.extensions import (
        MONITOR_JOB_KIND,
        MONITOR_SCENARIOS,
        run_monitor_case,
    )
    from repro.errors import ReproError
    from repro.exec import JobSpec, make_executor, run_jobs

    eid = args.eid.lower()
    if eid not in MONITOR_SCENARIOS:
        print(f"unknown monitored scenario {args.eid!r}; choose from "
              f"{', '.join(sorted(MONITOR_SCENARIOS))}", file=sys.stderr)
        return 2

    # Live printing happens from *inside* the run via a trace observer,
    # so the monitor's executors are the in-process ones; a run restored
    # from the journal instead re-renders its recorded violation lines.
    printed = 0
    ran = False

    def observer_factory(trace, monitors):
        def stream(idx: int, event: object, vector: object) -> None:
            nonlocal printed
            del vector
            if args.verbose:
                print(f"[event {idx:>6}] "
                      f"t={trace.time_of_index(idx):8.3f}  {event!r}")
            log = monitors.violation_log
            while printed < len(log):
                vidx, name = log[printed]
                printed += 1
                print(f"[event {vidx:>6}] "
                      f"t={trace.time_of_index(vidx):8.3f}  "
                      f"!! {name} VIOLATED by {trace.event_at(vidx)!r}")
        return stream

    def live_run(job: JobSpec):
        nonlocal ran
        ran = True
        return run_monitor_case(
            eid,
            n=args.n,
            seed=args.seed,
            stop=args.stop,
            max_events=args.max_events,
            observer_factory=observer_factory,
            failure_model=args.failure_model,
        )

    params = [
        ("n", args.n),
        ("stop", args.stop),
        ("max_events", args.max_events),
    ]
    if args.failure_model != "fail-stop":
        # Appended only when non-default so pre-existing journals keep
        # matching their recorded job identities.
        params.append(("failure_model", args.failure_model))
    job = JobSpec(
        kind=MONITOR_JOB_KIND,
        spec_id=eid,
        seed=args.seed,
        params=tuple(params),
    )
    try:
        executor = make_executor(args.backend or "serial", run=live_run)
        (result,) = run_jobs(
            [job],
            executor=executor,
            journal=args.journal,
            resume=args.resume,
        )
    except ReproError as exc:  # bad --n bounds, livelock, journal mismatch
        print(f"monitor failed: {exc}", file=sys.stderr)
        return 1
    if not ran:  # journaled: re-render the recorded violation lines
        for vidx, at, name, event in result.violations:
            print(f"[event {vidx:>6}] t={at:8.3f}  "
                  f"!! {name} VIOLATED by {event}")
    print(f"\n== monitor {eid} seed={args.seed}: "
          f"{result.events} events"
          f"{' (halted at first violation)' if result.halted else ''} ==")
    print(result.summary)
    return 0 if result.ok else 1


def _cmd_fuzz(args: argparse.Namespace) -> int:
    from repro.analysis.fuzz import (
        DEFAULT_CONFIG,
        FuzzConfig,
        run_adaptive_fuzz,
        run_fuzz,
    )
    from repro.errors import ReproError
    from repro.sim.multiworld import ShardedRunner

    backend = args.backend or "inproc"
    if args.batch != 50 and not args.adaptive:
        print("fuzz failed: --batch only applies to --adaptive",
              file=sys.stderr)
        return 2
    # The stepping controls configure the sharded multi-world engine;
    # silently dropping them would imply they applied. Parser defaults
    # are None sentinels, so presence — not value — is what's detected.
    given = [
        flag
        for value, flag in (
            (args.stepping, "--stepping"),
            (args.quantum, "--quantum"),
            (args.window, "--window"),
        )
        if value is not None
    ]
    if backend != "inproc" and given:
        print(
            f"fuzz failed: {', '.join(given)} only apply to "
            f"--backend inproc (the sharded engine), not {backend!r}",
            file=sys.stderr,
        )
        return 2
    if args.workers is not None and backend != "remote":
        print("fuzz failed: --workers only applies to --backend remote",
              file=sys.stderr)
        return 2
    stepping = args.stepping if args.stepping is not None else "round_robin"
    quantum = args.quantum if args.quantum is not None else 512
    window = args.window if args.window is not None else 64
    sink = None
    if args.stream:
        def render(index, total, job, outcome):
            flag = "  !! FINDING" if outcome.findings else ""
            return [
                f"[scenario {index + 1}/{total}] "
                f"n={outcome.scenario.n} "
                f"protocol={outcome.scenario.protocol} "
                f"events={outcome.events} "
                f"violations={len(outcome.violations)}{flag}"
            ]
        sink = _StreamSink(render)
    try:
        config = FuzzConfig(
            min_n=args.min_n,
            max_n=args.max_n,
            protocols=(
                tuple(args.protocols.split(","))
                if args.protocols
                else DEFAULT_CONFIG.protocols
            ),
            detectors=(
                tuple(args.detectors.split(","))
                if args.detectors
                else DEFAULT_CONFIG.detectors
            ),
            failure_model=args.failure_model,
        )
        runner = None
        if backend == "inproc":
            runner = ShardedRunner(
                stepping=stepping, quantum=quantum, window=window
            )
        adaptive = None
        if args.adaptive:
            adaptive = run_adaptive_fuzz(
                seed=args.seed, count=args.count, config=config,
                batch=args.batch, runner=runner, backend=backend,
                jobs=args.jobs, remote_workers=args.workers,
                journal=args.journal, resume=args.resume,
                sink=sink,
            )
            report = adaptive.report
        else:
            report = run_fuzz(
                seed=args.seed, count=args.count, config=config,
                runner=runner, backend=backend, jobs=args.jobs,
                remote_workers=args.workers,
                journal=args.journal, resume=args.resume, sink=sink,
            )
    except ReproError as exc:
        print(f"fuzz failed: {exc}", file=sys.stderr)
        return 2
    mode = stepping if backend == "inproc" else backend
    label = " adaptive" if adaptive is not None else ""
    print(f"== fuzz seed={args.seed} count={args.count} "
          f"({mode}{label}) ==")
    print(adaptive.summary() if adaptive is not None else report.summary())
    if runner is not None and adaptive is None:
        # The runner only saw scenarios that actually executed; the
        # rest (if any) were restored from the journal — say so rather
        # than print engine zeros that read as "ran and did nothing".
        # (Adaptive campaigns reuse the runner per batch, so its stats
        # cover only the final batch — skip them rather than mislead.)
        stats = runner.stats
        restored = report.count - stats.shards
        if stats.shards:
            note = (
                f" ({restored} of {report.count} scenarios restored "
                "from journal)" if restored else ""
            )
            print(f"engine: {stats.events} scheduler events, "
                  f"{stats.entries_reused} heap entries recycled, "
                  f"peak {stats.peak_live_shards} live shards{note}")
        elif restored:
            print(f"engine: idle — all {report.count} scenarios "
                  "restored from journal")
    if adaptive is not None:
        print(f"coverage={adaptive.coverage.digest()}")
        print(f"digest={adaptive.digest()}")
    else:
        print(f"digest={report.digest()}")

    if (args.shrink or args.corpus) and report.findings:
        from repro.analysis.corpus import CorpusEntry, save_entry
        from repro.analysis.shrink import finding_kinds, shrink

        for outcome in report.outcomes:
            if not outcome.findings:
                continue
            try:
                result = shrink(
                    outcome.scenario,
                    kinds=finding_kinds(outcome.findings),
                )
            except ReproError as exc:
                print(f"shrink failed for scenario {outcome.index}: {exc}",
                      file=sys.stderr)
                continue
            print(f"-- shrink scenario {outcome.index} --")
            print(result.summary())
            if args.corpus:
                entry = CorpusEntry(
                    name=f"fuzz-seed{args.seed}-i{outcome.index}",
                    scenario=result.minimal,
                    expect_kinds=tuple(sorted(result.kinds)),
                    note=(
                        f"shrunk from fuzz seed={args.seed} "
                        f"index={outcome.index}"
                        + (" (adaptive)" if adaptive is not None else "")
                    ),
                )
                path = save_entry(args.corpus, entry)
                print(f"corpus entry written: {path}")
    return 1 if report.findings else 0


def _cmd_cycle(args: argparse.Namespace) -> int:
    from repro.analysis.experiments import run_e3_single
    from repro.core.bounds import min_quorum_size

    k = args.k
    n = args.n if args.n is not None else 3 * k
    available = n - (-(-n // k))
    legal = min_quorum_size(n, k)
    for quorum in (available, legal):
        row = run_e3_single(k, n, quorum)
        outcome = (
            f"CYCLE of length {row.cycle_length}"
            if row.cycle_formed
            else "no cycle (starved)"
        )
        marker = "below bound" if quorum < legal else "at bound"
        print(f"k={k} n={n} quorum={quorum} ({marker}): "
              f"{row.detections} detections, {outcome}")
    return 0


def _cmd_worker(args: argparse.Namespace) -> int:
    from repro.errors import ReproError
    from repro.exec.remote import run_worker

    if (args.connect is None) == (args.listen is None):
        print("worker: exactly one of --connect or --listen is required",
              file=sys.stderr)
        return 2
    try:
        return run_worker(
            connect=args.connect,
            listen=args.listen,
            name=args.name,
            retry_for=args.retry_for,
        )
    except ReproError as exc:
        print(f"worker failed: {exc}", file=sys.stderr)
        return 1
    except (ConnectionError, OSError) as exc:
        print(f"worker: lost the coordinator: {exc}", file=sys.stderr)
        return 1


def main(argv: list[str] | None = None) -> int:
    """Entry point for ``python -m repro``."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Simulating Fail-Stop in Asynchronous Distributed "
        "Systems (Sabel & Marzullo, 1994) — reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    version = sub.add_parser(
        "version",
        help="package version and which event core (pure/accel) is active",
    )
    version.set_defaults(fn=_cmd_version)

    demo = sub.add_parser("demo", help="quickstart scenario + verdict")
    demo.add_argument("--n", type=int, default=9)
    demo.add_argument("--t", type=int, default=2)
    demo.add_argument("--seed", type=int, default=7)
    demo.set_defaults(fn=_cmd_demo)

    bounds = sub.add_parser("bounds", help="Theorem 7 / Corollary 8 table")
    bounds.add_argument("n", type=int)
    bounds.add_argument("t", type=int, nargs="?", default=None)
    bounds.set_defaults(fn=_cmd_bounds)

    experiment = sub.add_parser("experiment", help="run one experiment")
    experiment.add_argument("eid", help="e1..e11 or a1")
    experiment.set_defaults(fn=_cmd_experiment)

    sweep = sub.add_parser(
        "sweep",
        help="deterministic multi-seed sweep (serial or --jobs parallel)",
    )
    sweep.add_argument(
        "eid", nargs="?", default=None,
        help="a seeded experiment (e1, e2, e5, ...; see --list)",
    )
    sweep.add_argument(
        "--list", action="store_true",
        help="print the registered sweepable experiments and exit",
    )
    sweep.add_argument(
        "--seeds",
        type=_parse_seeds,
        default=list(range(10)),
        help="seed count (20 -> seeds 0..19) or comma list "
             "(3,5,8; a single seed is '7,')",
    )
    sweep.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes (<=1 runs serially; rows are identical)",
    )
    sweep.add_argument(
        "--param", action="append", type=_parse_param, metavar="NAME=VALUE",
        help="fixed driver parameter, repeatable (e.g. --param n=16)",
    )
    sweep.add_argument(
        "--failure-model", choices=_FAILURE_MODELS, default=None,
        help="run the experiment under this failure model (drivers that "
             "do not take one reject the flag with their parameter list)",
    )
    sweep.add_argument(
        "--early-stop", action="store_true",
        help="abort each case at its first streaming-monitor violation "
             "(drivers with an early_stop keyword only, e.g. e14)",
    )
    sweep.add_argument(
        "--stream", action="store_true",
        help="print each case's rows live, in planned order, as the "
             "finished prefix grows",
    )
    _add_exec_flags(
        sweep,
        backend_help="execution backend (default: parallel when "
                     "--jobs > 1, else serial); inproc skips process "
                     "spawn and recycles scheduler storage between "
                     "cases — all three are bit-identical",
    )
    sweep.set_defaults(fn=_cmd_sweep)

    monitor = sub.add_parser(
        "monitor",
        help="run a scenario with streaming conformance monitors attached",
    )
    monitor.add_argument(
        "eid", help="monitored scenario: demo, cycle, e14, benor"
    )
    monitor.add_argument("--seed", type=int, default=0)
    monitor.add_argument(
        "--failure-model", choices=_FAILURE_MODELS, default="fail-stop",
        help="failure semantics for the scenario world (crash-recovery "
             "wraps the protocol in the black-box recovery layer)",
    )
    monitor.add_argument(
        "--n", type=int, default=None,
        help="cluster size (scenario default when omitted)",
    )
    monitor.add_argument(
        "--stop", action="store_true",
        help="halt the world at the first halt-relevant violation",
    )
    monitor.add_argument(
        "--verbose", action="store_true",
        help="print every recorded event, not just violations",
    )
    monitor.add_argument("--max-events", type=int, default=1_000_000)
    _add_exec_flags(
        monitor,
        backends=("serial", "inproc"),
        backend_help="execution backend (in-process only: live violation "
                     "printing streams from inside the run)",
    )
    monitor.set_defaults(fn=_cmd_monitor)

    fuzz = sub.add_parser(
        "fuzz",
        help="run generated adversarial scenarios through the sharded "
             "multi-world engine with streaming monitors attached",
    )
    fuzz.add_argument("--seed", type=int, default=0)
    fuzz.add_argument("--count", type=int, default=200,
                      help="number of scenarios to generate and run")
    fuzz.add_argument("--min-n", type=int, default=3)
    fuzz.add_argument("--max-n", type=int, default=12)
    fuzz.add_argument(
        "--protocols", default=None,
        help="comma list drawn from sfs,transitive,generic,unilateral "
             "(default: all)",
    )
    fuzz.add_argument(
        "--detectors", default=None,
        help="comma list drawn from none,heartbeat,phi (default: all)",
    )
    fuzz.add_argument(
        "--failure-model", choices=_FAILURE_MODELS, default="fail-stop",
        help="fault vocabulary to fuzz with: fail-stop crashes, "
             "crash-recovery churn (protocols run under the black-box "
             "wrapper), or bounded-Byzantine interference",
    )
    # Stepping controls default to None sentinels so the backend guard
    # in _cmd_fuzz detects presence, not value; the effective defaults
    # (round_robin / 512 / 64) are resolved there, in one place.
    fuzz.add_argument(
        "--stepping", choices=("round_robin", "sequential"),
        default=None,
        help="shard stepping policy, --backend inproc only (default: "
             "round_robin; results are identical either way)",
    )
    fuzz.add_argument(
        "--quantum", type=int, default=None,
        help="events per shard per round-robin turn, --backend inproc "
             "only (default: 512)",
    )
    fuzz.add_argument(
        "--window", type=int, default=None,
        help="max worlds alive at once under round-robin, --backend "
             "inproc only (default: 64; bounds peak memory; results "
             "are identical for any window)",
    )
    fuzz.add_argument(
        "--jobs", type=int, default=2,
        help="worker processes for --backend parallel",
    )
    fuzz.add_argument(
        "--stream", action="store_true",
        help="print each scenario's outcome live, in index order, as "
             "the finished prefix grows",
    )
    fuzz.add_argument(
        "--adaptive", action="store_true",
        help="coverage-guided campaign: between fixed-size batches the "
             "per-axis sampling weights re-derive from the coverage map "
             "so far; replay-deterministic (same seed/count/batch/config "
             "reproduce the same digest on every backend)",
    )
    fuzz.add_argument(
        "--batch", type=int, default=50,
        help="scenarios per adaptive batch (weights re-derive between "
             "batches; --adaptive only; default: 50)",
    )
    fuzz.add_argument(
        "--shrink", action="store_true",
        help="greedily minimise every finding's scenario while "
             "preserving its finding kinds; prints the minimal "
             "reproducer and the shrink log",
    )
    fuzz.add_argument(
        "--corpus", metavar="DIR", default=None,
        help="write each shrunk finding as a JSON regression-corpus "
             "entry under DIR (implies --shrink); the corpus replay "
             "test re-checks every entry",
    )
    _add_exec_flags(
        fuzz,
        backend_help="execution backend (default: inproc, the sharded "
                     "multi-world engine; serial runs scenarios whole, "
                     "parallel fans them to --jobs workers — digests "
                     "are bit-identical on all three)",
    )
    fuzz.set_defaults(fn=_cmd_fuzz)

    cycle = sub.add_parser("cycle", help="Theorem 6 k-cycle construction")
    cycle.add_argument("k", type=int)
    cycle.add_argument("--n", type=int, default=None)
    cycle.set_defaults(fn=_cmd_cycle)

    worker = sub.add_parser(
        "worker",
        help="serve jobs for a remote coordinator (--backend remote)",
    )
    worker.add_argument(
        "--connect", metavar="HOST:PORT", default=None,
        help="dial the coordinator at this address (retried briefly, so "
             "worker and coordinator can start in either order)",
    )
    worker.add_argument(
        "--listen", metavar="HOST:PORT", default=None,
        help="bind this address and await the coordinator's dial "
             "(the hosts=... / --workers host:port,... direction)",
    )
    worker.add_argument(
        "--name", default=None,
        help="label reported to the coordinator (default: host-pid)",
    )
    worker.add_argument(
        "--retry-for", type=float, default=10.0, metavar="SECONDS",
        help="how long --connect keeps retrying before giving up",
    )
    worker.set_defaults(fn=_cmd_worker)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover - exercised via main()
    sys.exit(main())
