"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``demo`` — run the quickstart scenario and print the conformance report
  plus the Theorem 5 witness verdict.
* ``bounds N [T]`` — print the Theorem 7 / Corollary 8 bounds for a
  system of N processes (all t up to the feasibility edge, or just T).
* ``experiment EID`` — run one experiment driver (e1..e11, a1) at reduced
  scale and print its table.
* ``sweep EID`` — run a deterministic multi-seed sweep of one seeded
  experiment, optionally on a process pool (``--jobs``); serial and
  parallel runs print bit-identical rows and the same content digest.
* ``cycle K`` — run the Theorem 6 adversarial construction for a k-cycle
  and print the impossibility certificate.
"""

from __future__ import annotations

import argparse
import ast
import sys


def _parse_param(text: str) -> tuple[str, object]:
    """Parse one ``--param name=value`` pair (value via literal_eval)."""
    name, sep, raw = text.partition("=")
    if not sep or not name:
        raise argparse.ArgumentTypeError(
            f"expected name=value, got {text!r}"
        )
    try:
        value: object = ast.literal_eval(raw)
    except (ValueError, SyntaxError):
        value = raw
    return name, value


def _parse_seeds(text: str) -> list[int]:
    """``20`` means seeds 0..19; ``3,5,8`` means exactly those seeds.

    A single specific seed is the one-element list form: ``7,``.
    """
    if "," in text:
        return [int(part) for part in text.split(",") if part.strip()]
    return list(range(int(text)))


def _cmd_demo(args: argparse.Namespace) -> int:
    from repro.analysis import analyze
    from repro.core import ensure_crashes
    from repro.protocols import SfsProcess
    from repro.sim import build_world

    world = build_world(args.n, lambda: SfsProcess(t=args.t), seed=args.seed)
    world.inject_crash(args.n - 2, at=0.5)
    world.inject_suspicion(0, args.n - 2, at=1.0)
    world.adversary.hold_suspicions_about(args.n - 1, {args.n - 1})
    world.inject_suspicion(1, args.n - 1, at=1.2)
    world.scheduler.schedule_at(25.0, world.adversary.heal)
    world.run_to_quiescence()
    history = ensure_crashes(world.history())
    report = analyze(history, world.trace.quorum_records, t=args.t,
                     complete=False)
    print(f"n={args.n} t={args.t} seed={args.seed}: "
          f"{len(history)} events, crashed="
          f"{sorted(history.crashed_processes())}")
    print(report.summary())
    return 0 if report.indistinguishable_from_fail_stop else 1


def _cmd_bounds(args: argparse.Namespace) -> int:
    from repro.analysis.report import print_table
    from repro.core.bounds import bounds_table

    ts = [args.t] if args.t is not None else None
    rows = bounds_table([args.n], ts=ts)
    print_table(f"Theorem 7 / Corollary 8 bounds for n={args.n}", rows)
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    from repro.analysis import (
        print_table,
        run_a1,
        run_e1,
        run_e2,
        run_e3,
        run_e4,
        run_e5,
        run_e6,
        run_e7,
        run_e8,
        run_e9,
        run_e10,
        run_e11,
    )

    small = range(8)
    drivers = {
        "e1": lambda: run_e1(seeds=small),
        "e2": lambda: run_e2(seeds=small),
        "e3": lambda: run_e3(),
        "e4": lambda: run_e4(),
        "e5": lambda: run_e5(seeds=small),
        "e6": lambda: run_e6(),
        "e7": lambda: run_e7(seeds=range(16)),
        "e8": lambda: run_e8(seeds=small),
        "e9": lambda: run_e9(seeds=small),
        "e10": lambda: run_e10(seeds=range(4)),
        "e11": lambda: run_e11(seeds=small),
        "a1": lambda: run_a1(seeds=range(4)),
    }
    eid = args.eid.lower()
    if eid not in drivers:
        print(f"unknown experiment {args.eid!r}; choose from "
              f"{', '.join(sorted(drivers))}", file=sys.stderr)
        return 2
    rows = drivers[eid]()
    if not isinstance(rows, list):
        rows = [rows]
    print_table(f"experiment {eid.upper()} (reduced scale)", rows)
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    import inspect

    from repro.analysis.sweep import (
        rows_digest,
        run_sweep,
        sweep_driver,
        sweep_table,
    )
    from repro.errors import ReproError, SimulationError

    eid = args.eid.lower()
    try:
        driver = sweep_driver(eid)
    except SimulationError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    params = dict(args.param or [])
    # Reject unknown parameter names up front, so a genuine TypeError
    # inside a driver still surfaces as a traceback, not a usage error.
    # 'seeds' is excluded: the sweep runner supplies it per case.
    accepted = [
        name for name in inspect.signature(driver).parameters
        if name != "seeds"
    ]
    unknown = sorted(name for name in params if name not in accepted)
    if unknown:
        print(
            f"sweep failed: {eid} does not accept parameter(s) "
            f"{', '.join(unknown)} (it accepts: "
            f"{', '.join(accepted)})",
            file=sys.stderr,
        )
        return 1
    try:
        rows = run_sweep(eid, seeds=args.seeds, params=params, jobs=args.jobs)
    except ReproError as exc:
        print(f"sweep failed: {exc}", file=sys.stderr)
        return 1
    print(f"\n== sweep {eid.upper()} ({len(args.seeds)} seeds) ==")
    print(sweep_table(rows))
    print(f"rows={len(rows)} digest={rows_digest(rows)}")
    return 0


def _cmd_cycle(args: argparse.Namespace) -> int:
    from repro.analysis.experiments import run_e3_single
    from repro.core.bounds import min_quorum_size

    k = args.k
    n = args.n if args.n is not None else 3 * k
    available = n - (-(-n // k))
    legal = min_quorum_size(n, k)
    for quorum in (available, legal):
        row = run_e3_single(k, n, quorum)
        outcome = (
            f"CYCLE of length {row.cycle_length}"
            if row.cycle_formed
            else "no cycle (starved)"
        )
        marker = "below bound" if quorum < legal else "at bound"
        print(f"k={k} n={n} quorum={quorum} ({marker}): "
              f"{row.detections} detections, {outcome}")
    return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point for ``python -m repro``."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Simulating Fail-Stop in Asynchronous Distributed "
        "Systems (Sabel & Marzullo, 1994) — reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    demo = sub.add_parser("demo", help="quickstart scenario + verdict")
    demo.add_argument("--n", type=int, default=9)
    demo.add_argument("--t", type=int, default=2)
    demo.add_argument("--seed", type=int, default=7)
    demo.set_defaults(fn=_cmd_demo)

    bounds = sub.add_parser("bounds", help="Theorem 7 / Corollary 8 table")
    bounds.add_argument("n", type=int)
    bounds.add_argument("t", type=int, nargs="?", default=None)
    bounds.set_defaults(fn=_cmd_bounds)

    experiment = sub.add_parser("experiment", help="run one experiment")
    experiment.add_argument("eid", help="e1..e11 or a1")
    experiment.set_defaults(fn=_cmd_experiment)

    sweep = sub.add_parser(
        "sweep",
        help="deterministic multi-seed sweep (serial or --jobs parallel)",
    )
    sweep.add_argument("eid", help="a seeded experiment (e1, e2, e5, ...)")
    sweep.add_argument(
        "--seeds",
        type=_parse_seeds,
        default=list(range(10)),
        help="seed count (20 -> seeds 0..19) or comma list "
             "(3,5,8; a single seed is '7,')",
    )
    sweep.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes (<=1 runs serially; rows are identical)",
    )
    sweep.add_argument(
        "--param", action="append", type=_parse_param, metavar="NAME=VALUE",
        help="fixed driver parameter, repeatable (e.g. --param n=16)",
    )
    sweep.set_defaults(fn=_cmd_sweep)

    cycle = sub.add_parser("cycle", help="Theorem 6 k-cycle construction")
    cycle.add_argument("k", type=int)
    cycle.add_argument("--n", type=int, default=None)
    cycle.set_defaults(fn=_cmd_cycle)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover - exercised via main()
    sys.exit(main())
