"""A small view-based group-membership service on top of sFS.

Failure detection "is typically done as part of a group membership service
(e.g., [RB91, MPS91, ADKM92])" — Section 6. This app closes the loop: a
membership view is the process universe minus everything the local process
has detected, and sFS2d lifts directly to the membership invariant that
makes views usable:

    **exclusion propagation** — if a sender had excluded ``j`` from its
    view before sending a message, the receiver has excluded ``j`` by the
    time it consumes that message.

So a process never acts on a message from a peer whose view is "ahead" of
its own with respect to the sender's exclusions, without any extra view
agreement rounds. The checkers below verify exclusion propagation and
eventual view agreement on recorded histories.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable

from repro.core.events import CrashEvent, FailedEvent, SendEvent
from repro.core.history import History
from repro.core.messages import Message
from repro.protocols.sfs import SfsProcess

VIEW_CHANGE = "view-change"
"""Internal-event label recorded at each view installation."""


class MembershipProcess(SfsProcess):
    """An sFS participant exposing a monotonically shrinking view."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.view_history: list[frozenset[int]] = []

    @property
    def view(self) -> frozenset[int]:
        """The current membership view (universe minus detections)."""
        return frozenset(p for p in range(self.n) if p not in self.detected)

    def on_start(self) -> None:
        super().on_start()
        self.view_history.append(self.view)

    def on_detect(self, target: int) -> None:
        super().on_detect(target)
        self.view_history.append(self.view)
        self.record_internal((VIEW_CHANGE, tuple(sorted(self.view))))

    # Convenience for applications above membership -------------------

    def multicast(self, payload: Hashable) -> list[Message]:
        """Send application data to every current view member (not self)."""
        sent = []
        for dst in sorted(self.view - {self.pid}):
            msg = self.send_app(dst, payload)
            if msg is not None:
                sent.append(msg)
        return sent


# ----------------------------------------------------------------------
# Offline invariants
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class MembershipReport:
    """Outcome of the membership invariant checks on one history."""

    exclusion_propagation: bool
    views_monotone: bool
    survivors_agree: bool
    violations: tuple[str, ...]


def _views_over_history(history: History) -> tuple[list[dict[int, set[int]]], list]:
    """Per-event snapshots of each process's exclusion set."""
    excluded: dict[int, set[int]] = {p: set() for p in history.processes}
    snapshots: list[dict[int, set[int]]] = []
    for event in history:
        snapshots.append({p: set(s) for p, s in excluded.items()})
        if isinstance(event, FailedEvent):
            excluded[event.proc].add(event.target)
    snapshots.append({p: set(s) for p, s in excluded.items()})
    return snapshots, list(history)


def check_exclusion_propagation(history: History) -> list[str]:
    """sFS2d, phrased on views: sender exclusions precede receipt.

    For every application message: everything the sender had excluded
    when it sent must be excluded by the receiver when it consumes.
    """
    violations: list[str] = []
    snapshots, events = _views_over_history(history)
    recv_index = history.recv_index
    for uid, sidx in history.send_index.items():
        ridx = recv_index.get(uid)
        if ridx is None:
            continue
        send_event = events[sidx]
        assert isinstance(send_event, SendEvent)
        sender, receiver = send_event.proc, send_event.dst
        sender_excluded = snapshots[sidx][sender]
        receiver_excluded = snapshots[ridx + 1][receiver]
        missing = sender_excluded - receiver_excluded
        # Protocol traffic (Susp) is exempt: it is the propagation itself.
        payload = send_event.msg.payload
        if getattr(payload, "suspicion_target", None) is not None:
            continue
        if missing:
            violations.append(
                f"message {uid} from {sender} (excluded {sorted(sender_excluded)}) "
                f"consumed by {receiver} before excluding {sorted(missing)}"
            )
    return violations


def check_membership(history: History) -> MembershipReport:
    """All membership invariants over one finished run."""
    violations = check_exclusion_propagation(history)
    exclusion_ok = not violations

    # Views monotone: exclusion sets only grow (true by construction of
    # stable FAILED variables, but re-checked against the raw history).
    monotone = True
    seen: dict[int, set[int]] = {p: set() for p in history.processes}
    for event in history:
        if isinstance(event, FailedEvent):
            if event.target in seen[event.proc]:
                monotone = False
                violations.append(
                    f"duplicate exclusion of {event.target} at {event.proc}"
                )
            seen[event.proc].add(event.target)

    # Survivors agree: every non-crashed process ends with the same view.
    crashed = {
        e.proc for e in history if isinstance(e, CrashEvent)
    }
    final_views = {
        p: frozenset(history.processes) - frozenset(seen[p])
        for p in history.processes
        if p not in crashed
    }
    agree = len(set(final_views.values())) <= 1
    if not agree:
        violations.append(f"survivor views diverge: {final_views}")
    return MembershipReport(
        exclusion_propagation=exclusion_ok,
        views_monotone=monotone,
        survivors_agree=agree,
        violations=tuple(violations),
    )
