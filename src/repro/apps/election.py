"""Leader election under (simulated) fail-stop — the Section 1 example.

Each process keeps the list ``(0, 1, ..., n-1)``; the head of the list is
the leader. When a process detects a failure it removes the victim from its
local copy; when a process finds itself at the head, it knows it is the
leader. Under true fail-stop there is never more than one leader. Under a
model that is merely *indistinguishable* from fail-stop "there may be more
than one leader in some global state, but no process will be able to
determine this" — experiment E9 makes that sentence quantitative:

* :func:`max_concurrent_leaders` over the raw sFS run can exceed 1
  (transiently, while a falsely-detected leader has not yet crashed);
* over the Theorem 5 FS-witness of the *same* run it never does — and the
  witness is indistinguishable to every process, so no process saw two
  leaders.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.events import CrashEvent, FailedEvent
from repro.core.history import History
from repro.protocols.sfs import SfsProcess

BECOME_LEADER = "become-leader"
"""Internal-event label recorded when a process assumes leadership."""


class ElectionProcess(SfsProcess):
    """An sFS protocol participant running the list-based election."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._was_leader = False

    @property
    def candidates(self) -> list[int]:
        """The local list with detected processes removed."""
        return [p for p in range(self.n) if p not in self.detected]

    @property
    def leader(self) -> int:
        """The head of the local candidate list."""
        return self.candidates[0]

    def believes_leader(self) -> bool:
        """Whether this process currently considers itself the leader."""
        return not self.crashed and self.leader == self.pid

    def on_start(self) -> None:
        super().on_start()
        self._assume_if_leader()

    def on_detect(self, target: int) -> None:
        super().on_detect(target)
        self._assume_if_leader()

    def _assume_if_leader(self) -> None:
        if self.believes_leader() and not self._was_leader:
            self._was_leader = True
            self.record_internal(BECOME_LEADER)


# ----------------------------------------------------------------------
# Offline analysis of leadership over the global states of a history
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class LeadershipProfile:
    """Leadership statistics over every global state of a run."""

    max_concurrent: int
    positions_with_two_plus: int
    total_positions: int
    leaderless_positions: int

    @property
    def ever_split(self) -> bool:
        """Whether two live processes were simultaneously leaders."""
        return self.max_concurrent >= 2


def leaders_at_every_state(history: History) -> list[frozenset[int]]:
    """For each position, the set of live processes that believe they lead.

    Process *i* believes it leads when it has detected every
    lower-numbered process and has not crashed. Computed incrementally,
    one pass over the history.
    """
    n = history.n
    crashed: set[int] = set()
    detected: list[set[int]] = [set() for _ in range(n)]

    def leaders() -> frozenset[int]:
        out = set()
        for i in range(n):
            if i in crashed:
                continue
            lower = set(range(i))
            if lower <= detected[i]:
                out.add(i)
                # Processes above the first live leader-candidate may
                # *also* believe they lead if they detected everyone
                # below them; keep scanning.
        return frozenset(out)

    result = [leaders()]
    for event in history:
        if isinstance(event, CrashEvent):
            crashed.add(event.proc)
        elif isinstance(event, FailedEvent):
            detected[event.proc].add(event.target)
        result.append(leaders())
    return result


def leadership_profile(history: History) -> LeadershipProfile:
    """Summarize concurrent-leadership over a run's global states."""
    per_state = leaders_at_every_state(history)
    counts = [len(s) for s in per_state]
    return LeadershipProfile(
        max_concurrent=max(counts) if counts else 0,
        positions_with_two_plus=sum(1 for c in counts if c >= 2),
        total_positions=len(counts),
        leaderless_positions=sum(1 for c in counts if c == 0),
    )


def max_concurrent_leaders(history: History) -> int:
    """The largest number of simultaneous (live) self-believed leaders."""
    return leadership_profile(history).max_concurrent
