"""Determining the last process to fail ([Ske85]) — Section 6's case study.

Every process durably logs the failures it detects (its view of the
failed-before relation). After a *total failure*, recovering processes pool
their logs and look for the processes that nobody outlived: the maximal
elements of failed-before among the crashed. The paper's point:

* if failed-before is **acyclic** (sFS2b — any model indistinguishable
  from fail-stop), the candidate set is non-empty and consistent with the
  simulated crash order, so recovery can proceed once the candidates are
  back;
* if **cycles** are possible (the Section 6 cheap model), recovery can be
  flat wrong — the paper's two-process example has process 1 falsely
  detect 2, crash, and later conclude *it* was last to fail while 2
  actually outlived it. "The only possible recovery is to always wait for
  all crashed processes to recover."

Experiment E8 runs staged total failures under both protocols and scores
the recovered verdicts against the Theorem 5 witness (the simulated crash
order that defines correctness under indistinguishability).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.events import CrashEvent, FailedEvent
from repro.core.failed_before import find_cycle, last_failed_candidates
from repro.core.history import History
from repro.core.indistinguishability import ensure_crashes, fail_stop_witness
from repro.errors import CannotRearrangeError


@dataclass(frozen=True)
class FailureLog:
    """One process's durable record of the failures it detected, in order."""

    owner: int
    entries: tuple[int, ...]


def collect_logs(history: History) -> list[FailureLog]:
    """Reconstruct every process's failure log from the history.

    This is what each process's stable storage would contain at the end of
    the run: the targets of its ``failed`` events, in execution order.
    """
    entries: dict[int, list[int]] = {p: [] for p in history.processes}
    for event in history:
        if isinstance(event, FailedEvent):
            entries[event.proc].append(event.target)
    return [FailureLog(p, tuple(entries[p])) for p in history.processes]


@dataclass(frozen=True)
class RecoveryVerdict:
    """The outcome of a last-to-fail recovery attempt.

    Attributes:
        candidates: crashed processes that no other crashed process is
            recorded as having outlived (the recovery's answer).
        cycle: a failed-before cycle if one poisoned the logs, else None.
        solvable: whether the recovery algorithm can answer at all
            (non-empty candidates, no cycle).
    """

    candidates: frozenset[int]
    cycle: tuple[tuple[int, int], ...] | None
    solvable: bool


def recover_last_to_fail(history: History) -> RecoveryVerdict:
    """Run Skeen-style recovery over the pooled logs of a finished run."""
    cycle = find_cycle(history)
    candidates = last_failed_candidates(history)
    if cycle is not None:
        return RecoveryVerdict(
            candidates=candidates,
            cycle=tuple(cycle),
            solvable=False,
        )
    return RecoveryVerdict(
        candidates=candidates, cycle=None, solvable=bool(candidates)
    )


def simulated_crash_order(history: History) -> list[int]:
    """The crash order of the Theorem 5 FS-witness run.

    Under a model indistinguishable from fail-stop, *this* is the failure
    order the system's inhabitants experienced; it defines correctness for
    last-to-fail. Raises :class:`CannotRearrangeError` when no witness
    exists (cyclic runs), in which case there is no consistent order.
    """
    witness = fail_stop_witness(history)
    return [e.proc for e in witness if isinstance(e, CrashEvent)]


def verdict_is_correct(history: History) -> bool:
    """Score a recovery against the simulated crash order.

    Correct means: recovery was solvable and its candidate set contains
    the process that crashed last in the FS-witness ordering. (Ties —
    several maximal candidates — are allowed: the recovery protocol then
    waits for all of them, which is safe.)
    """
    completed = ensure_crashes(history)
    verdict = recover_last_to_fail(completed)
    if not verdict.solvable:
        return False
    try:
        order = simulated_crash_order(completed)
    except CannotRearrangeError:
        return False
    if not order:
        return False
    return order[-1] in verdict.candidates


def two_process_counterexample_shape(history: History) -> bool:
    """Detect the paper's 1-falsely-detects-2 pathology in a run.

    True when some process's own log says it detected a peer that, in
    fact, detected *it* too — the mutual-detection knot that makes naive
    recovery claim the wrong survivor.
    """
    detected: dict[int, set[int]] = {p: set() for p in history.processes}
    for event in history:
        if isinstance(event, FailedEvent):
            detected[event.proc].add(event.target)
    for p in history.processes:
        for q in detected[p]:
            if p in detected.get(q, ()):
                return True
    return False
