"""Applications built on the simulated-fail-stop failure model.

* :mod:`repro.apps.election` — the Section 1 list-based leader election.
* :mod:`repro.apps.last_to_fail` — Skeen's determining-the-last-process-
  to-fail, Section 6's sensitivity case for sFS2b.
* :mod:`repro.apps.membership` — a view-based membership service whose
  core invariant is sFS2d lifted to views.
* :mod:`repro.apps.snapshot` — Chandy-Lamport consistent snapshots
  ([CL85], the paper's stability citation) over the same substrate.
* :mod:`repro.apps.ben_or` — Ben-Or randomized binary consensus,
  crash-recovery-aware via stable storage; the workout for the
  pluggable failure-model layer (experiment E17).
"""

from repro.apps.ben_or import (
    DECIDE,
    BenOrProcess,
    check_consensus,
    decided_values,
    decision_events,
)
from repro.apps.election import (
    BECOME_LEADER,
    ElectionProcess,
    LeadershipProfile,
    leaders_at_every_state,
    leadership_profile,
    max_concurrent_leaders,
)
from repro.apps.last_to_fail import (
    FailureLog,
    RecoveryVerdict,
    collect_logs,
    recover_last_to_fail,
    simulated_crash_order,
    two_process_counterexample_shape,
    verdict_is_correct,
)
from repro.apps.membership import (
    VIEW_CHANGE,
    MembershipProcess,
    MembershipReport,
    check_exclusion_propagation,
    check_membership,
)
from repro.apps.snapshot import (
    LocalSnapshot,
    Marker,
    SnapshotProcess,
    assemble_global_snapshot,
    cut_indices,
    verify_consistent_cut,
)

__all__ = [
    "BenOrProcess",
    "DECIDE",
    "decided_values",
    "decision_events",
    "check_consensus",
    "ElectionProcess",
    "LeadershipProfile",
    "leadership_profile",
    "leaders_at_every_state",
    "max_concurrent_leaders",
    "BECOME_LEADER",
    "FailureLog",
    "RecoveryVerdict",
    "collect_logs",
    "recover_last_to_fail",
    "simulated_crash_order",
    "verdict_is_correct",
    "two_process_counterexample_shape",
    "MembershipProcess",
    "MembershipReport",
    "check_membership",
    "check_exclusion_propagation",
    "VIEW_CHANGE",
    "SnapshotProcess",
    "LocalSnapshot",
    "Marker",
    "verify_consistent_cut",
    "cut_indices",
    "assemble_global_snapshot",
]
