"""Ben-Or randomized binary consensus, exercising the failure models.

A faithful-to-the-shape implementation of Ben-Or's two-phase randomized
consensus for the crash model (``n > 2t``): each round, every process
broadcasts its estimate (phase 1), adopts a majority value if one exists,
broadcasts that (phase 2), and decides when ``t + 1`` processes vouch for
the same value — otherwise it flips a deterministic per-process coin and
tries again.

The app is written *crash-recovery-aware from the start* (unlike the
paper's detection protocols, which get crash-recovery via the black-box
wrapper of :mod:`repro.protocols.recovery`): the consensus-critical state
``(est, round, phase, w, decided)`` is persisted to stable storage after
every transition and restored in :meth:`BenOrProcess.on_recover`, while
the per-round vote tallies are volatile and genuinely lost at a crash.
Lost votes are survivable because every undecided process retransmits its
current-phase broadcast periodically, decided processes answer stragglers
with a ``("decided", v)`` catch-up, and a process that sees a message
from a higher round jumps forward (abstaining from the rounds it slept
through — indistinguishable from having been slow).

Under byzantine-crash the adversary's mutations arrive as unparseable
payloads and are ignored, duplications are absorbed by the per-sender
tallies, and drops are repaired by retransmission — so agreement and
validity hold under all three failure models, which is exactly what
experiment E17 measures.

All randomness (the coin flips) comes from a dedicated per-process
stream ``random.Random(f"repro-benor:{seed}:{pid}")`` — never from the
world's RNG — so attaching this app perturbs no other draw order.
"""

from __future__ import annotations

import random
from typing import Hashable

from repro.core.events import InternalEvent
from repro.core.history import History
from repro.errors import SimulationError
from repro.sim.process import SimProcess
from repro.sim.world import World

DECIDE = "benor-decide"
"""Internal-event label prefix recorded at decision time."""

_STATE_KEY = "benor:state"


class BenOrProcess(SimProcess):
    """One Ben-Or participant.

    Args:
        initial: this process's proposal (0/1); default ``pid % 2``.
        t: crash-resilience bound; requires ``n > 2t`` (checked at bind).
        seed: seed for the per-process coin stream.
        resend_every: retransmission period for the current-phase
            broadcast while undecided (repairs losses and recoveries).
    """

    def __init__(
        self,
        initial: int | None = None,
        t: int = 1,
        seed: int = 0,
        resend_every: float = 1.0,
    ):
        super().__init__()
        self.t = t
        self.initial = initial
        self.seed = seed
        self.resend_every = resend_every
        self.est: int = 0
        self.round = 1
        self.phase = 1
        self.w: int | None = None
        self.decided: int | None = None
        self._coin: random.Random | None = None
        # Volatile per-round tallies: round -> {sender: value}.
        self._p1: dict[int, dict[int, int]] = {}
        self._p2: dict[int, dict[int, int | None]] = {}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def bind(self, world: World, pid: int) -> None:
        super().bind(world, pid)
        if world.n <= 2 * self.t:
            raise SimulationError(
                f"Ben-Or needs n > 2t, got n={world.n}, t={self.t}"
            )
        self._coin = random.Random(f"repro-benor:{self.seed}:{pid}")
        if self.initial is None:
            self.initial = pid % 2
        self.est = self.initial

    def on_start(self) -> None:
        self._persist()
        self.broadcast((1, self.round, self.est), include_self=True)
        self.set_timer(self.resend_every, self._resend, periodic=True)

    def on_recover(self) -> None:
        state = self.stable.get(_STATE_KEY)
        if state is not None:
            self.est, self.round, self.phase, self.w, self.decided = state
        # Tallies are volatile: whatever was counted is gone.
        self._p1 = {}
        self._p2 = {}
        self._broadcast_current()
        self.set_timer(self.resend_every, self._resend, periodic=True)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def _persist(self) -> None:
        self.stable.put(
            _STATE_KEY,
            (self.est, self.round, self.phase, self.w, self.decided),
        )

    # ------------------------------------------------------------------
    # Protocol
    # ------------------------------------------------------------------

    @property
    def quorum(self) -> int:
        """Messages per round/phase to wait for (``n - t``)."""
        return self.n - self.t

    def _broadcast_current(self) -> None:
        if self.decided is not None:
            return
        if self.phase == 1:
            self.broadcast((1, self.round, self.est), include_self=True)
        else:
            self.broadcast((2, self.round, self.w), include_self=True)

    def _resend(self) -> None:
        if self.decided is not None:
            return  # let the timer chain die; catch-ups handle stragglers
        self._broadcast_current()
        self.set_timer(self.resend_every, self._resend, periodic=True)

    def on_message(self, src: int, payload: Hashable, msg) -> None:
        if self.decided is not None:
            if isinstance(payload, tuple) and payload and payload[0] in (1, 2):
                self.send(src, ("decided", self.decided))
            return
        if not isinstance(payload, tuple) or len(payload) != 3:
            if (
                isinstance(payload, tuple)
                and len(payload) == 2
                and payload[0] == "decided"
            ):
                self._decide(payload[1])
            return
        tag, r, value = payload
        if tag == 1 and value in (0, 1):
            self._jump_if_behind(r)
            self._p1.setdefault(r, {}).setdefault(src, value)
            self._advance()
        elif tag == 2 and value in (0, 1, None):
            self._jump_if_behind(r)
            self._p2.setdefault(r, {}).setdefault(src, value)
            self._advance()

    def _jump_if_behind(self, r: int) -> None:
        """Adopt a higher round (we slept through the intermediate ones)."""
        if isinstance(r, int) and r > self.round:
            self.round = r
            self.phase = 1
            self.w = None
            self._persist()
            self._broadcast_current()

    def _advance(self) -> None:
        while self.decided is None:
            if self.phase == 1:
                tally = self._p1.get(self.round, {})
                if len(tally) < self.quorum:
                    return
                votes = list(tally.values())
                self.w = None
                for v in (0, 1):
                    if votes.count(v) * 2 > self.n:
                        self.w = v
                self.phase = 2
                self._persist()
                self.broadcast((2, self.round, self.w), include_self=True)
            else:
                tally = self._p2.get(self.round, {})
                if len(tally) < self.quorum:
                    return
                vouched = [v for v in tally.values() if v is not None]
                if len(vouched) >= self.t + 1:
                    self._decide(vouched[0])
                    return
                if vouched:
                    self.est = vouched[0]
                else:
                    assert self._coin is not None
                    self.est = self._coin.randint(0, 1)
                self.round += 1
                self.phase = 1
                self.w = None
                self._persist()
                self.broadcast((1, self.round, self.est), include_self=True)

    def _decide(self, v: int) -> None:
        if self.decided is not None:
            return
        self.decided = v
        self._persist()
        self.record_internal((DECIDE, v))


# ----------------------------------------------------------------------
# Offline verdicts
# ----------------------------------------------------------------------


def decided_values(world: World) -> dict[int, int]:
    """Map pid -> decided value, for processes that decided."""
    out: dict[int, int] = {}
    for proc in world.processes:
        if isinstance(proc, BenOrProcess) and proc.decided is not None:
            out[proc.pid] = proc.decided
    return out


def decision_events(history: History) -> list[tuple[int, int]]:
    """``(pid, value)`` per decide internal event, in history order."""
    return [
        (e.proc, e.label[1])
        for e in history
        if isinstance(e, InternalEvent)
        and isinstance(e.label, tuple)
        and len(e.label) == 2
        and e.label[0] == DECIDE
    ]


def check_consensus(world: World) -> list[str]:
    """Agreement + validity violations for a finished Ben-Or run."""
    violations: list[str] = []
    decisions = decided_values(world)
    values = set(decisions.values())
    if len(values) > 1:
        violations.append(f"agreement violated: decisions {decisions}")
    initials = {
        proc.initial
        for proc in world.processes
        if isinstance(proc, BenOrProcess)
    }
    for pid, value in decisions.items():
        if value not in initials:
            violations.append(
                f"validity violated: process {pid} decided {value}, "
                f"proposals were {sorted(initials)}"
            )
    return violations
