"""Chandy-Lamport distributed snapshots on the sFS substrate ([CL85]).

The paper leans on [CL85] for the stability of its predicates; this app
closes that dependency by implementing the snapshot algorithm itself on
top of the simulated-fail-stop stack, so stable predicates (CRASH, FAILED,
and application state) can be evaluated at *consistent cuts* of a live
system rather than only offline.

Standard algorithm, adapted to the substrate:

* an initiator records its local state and sends a marker on every
  outgoing channel;
* on first marker receipt, a process records its state, marks the channel
  the marker arrived on as empty, and relays markers on all outgoing
  channels;
* for every other incoming channel, the process records the application
  messages arriving between its own recording point and that channel's
  marker — the in-flight channel state.

Because markers ride the same FIFO application channels as data, the
recorded cut is consistent: no recorded state reflects a message receipt
whose send is outside the cut. :func:`verify_consistent_cut` checks
exactly that against the recorded history's happens-before relation, and
the test suite runs it under concurrent failure detections (deferral
shifts when a marker is *consumed*, which moves the cut but never breaks
its consistency — FIFO consumption order is preserved).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable

from repro.core.events import InternalEvent, RecvEvent, SendEvent
from repro.core.history import History
from repro.protocols.sfs import SfsProcess

RECORD_LABEL = "snapshot-record"


@dataclass(frozen=True, slots=True)
class Marker:
    """The snapshot marker, tagged with the snapshot id and initiator."""

    snap_id: int
    initiator: int


@dataclass
class LocalSnapshot:
    """One process's contribution to a global snapshot."""

    snap_id: int
    owner: int
    state: Hashable
    channel_messages: dict[int, list[Hashable]] = field(default_factory=dict)
    complete: bool = False


class SnapshotProcess(SfsProcess):
    """An sFS participant that can take Chandy-Lamport snapshots.

    Subclasses may override :meth:`snapshot_state` to expose application
    state; the default records the detection set and a message counter,
    which suffices for evaluating the paper's predicates at the cut.
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.snapshots: dict[int, LocalSnapshot] = {}
        self._recording_from: dict[int, set[int]] = {}
        self.app_messages_seen = 0

    # ------------------------------------------------------------------
    # State exposure
    # ------------------------------------------------------------------

    def snapshot_state(self) -> Hashable:
        """The local state captured at the recording point."""
        return (
            ("detected", tuple(sorted(self.detected))),
            ("app_messages_seen", self.app_messages_seen),
        )

    # ------------------------------------------------------------------
    # Protocol
    # ------------------------------------------------------------------

    def initiate_snapshot(self, snap_id: int) -> None:
        """Record local state and flood markers (the [CL85] initiator)."""
        if self.crashed or snap_id in self.snapshots:
            return
        self._record_local(snap_id, self.pid)

    def _record_local(self, snap_id: int, initiator: int) -> None:
        snapshot = LocalSnapshot(
            snap_id=snap_id, owner=self.pid, state=self.snapshot_state()
        )
        self.snapshots[snap_id] = snapshot
        # Record in the history so the cut is visible to offline checks.
        self.record_internal((RECORD_LABEL, snap_id))
        # Every other incoming channel is now being recorded.
        self._recording_from[snap_id] = set(self.peers)
        for peer in self.peers:
            snapshot.channel_messages[peer] = []
        for peer in self.peers:
            self.send_app(peer, Marker(snap_id, initiator))
        self._maybe_complete(snap_id)

    def on_app_message(self, src: int, payload, msg) -> None:
        if isinstance(payload, Marker):
            self._on_marker(src, payload)
            return
        self.app_messages_seen += 1
        # Any in-progress snapshot records this message if the channel is
        # still being recorded.
        for snap_id, channels in self._recording_from.items():
            if src in channels:
                self.snapshots[snap_id].channel_messages[src].append(payload)
        self.on_data_message(src, payload, msg)

    def on_data_message(self, src: int, payload, msg) -> None:
        """Hook for application traffic that is not snapshot machinery."""

    def _on_marker(self, src: int, marker: Marker) -> None:
        snap_id = marker.snap_id
        if snap_id not in self.snapshots:
            # First marker: record state; the marker's channel is empty.
            self._record_local(snap_id, marker.initiator)
        recording = self._recording_from.get(snap_id)
        if recording is not None:
            recording.discard(src)
        self._maybe_complete(snap_id)

    def _maybe_complete(self, snap_id: int) -> None:
        recording = self._recording_from.get(snap_id)
        snapshot = self.snapshots.get(snap_id)
        if snapshot is None or recording is None:
            return
        # Channels from processes we have detected will never deliver a
        # marker; their recorded state is whatever arrived before the
        # detection (the model guarantees nothing more can arrive).
        still_open = {src for src in recording if src not in self.detected}
        if not still_open:
            snapshot.complete = True

    def on_detect(self, target: int) -> None:
        super().on_detect(target)
        for snap_id in list(self._recording_from):
            self._maybe_complete(snap_id)


# ----------------------------------------------------------------------
# Offline verification
# ----------------------------------------------------------------------


def cut_indices(history: History, snap_id: int) -> dict[int, int]:
    """Each process's recording point (history index), if it recorded."""
    out: dict[int, int] = {}
    for idx, event in enumerate(history):
        if (
            isinstance(event, InternalEvent)
            and isinstance(event.label, tuple)
            and len(event.label) == 2
            and event.label[0] == RECORD_LABEL
            and event.label[1] == snap_id
        ):
            out.setdefault(event.proc, idx)
    return out


def verify_consistent_cut(history: History, snap_id: int) -> list[str]:
    """Check the fundamental snapshot property on the recorded history.

    The cut puts, for each recorded process, everything up to its
    recording point inside. Consistency: no *data* message received inside
    the cut was sent outside it. Markers are exempt — they are the cut's
    control traffic and by construction cross it (a receiver records
    state immediately upon consuming its first marker). A process that
    crashed without recording contributes its whole (finite) execution to
    the inside: it takes no steps after the snapshot begins, so nothing
    it did can depend on post-cut events. A live process that never
    recorded contributes everything to the outside (conservative).
    Returns violations (empty = consistent).
    """
    cut = cut_indices(history, snap_id)
    if not cut:
        return [f"snapshot {snap_id}: nobody recorded"]
    crashed = history.crashed_processes()

    def inside(idx: int, proc: int) -> bool:
        boundary = cut.get(proc)
        if boundary is None:
            return proc in crashed
        return idx < boundary

    violations: list[str] = []
    recv_index = history.recv_index
    for uid, sidx in history.send_index.items():
        ridx = recv_index.get(uid)
        if ridx is None:
            continue
        send_event = history[sidx]
        recv_event = history[ridx]
        assert isinstance(send_event, SendEvent)
        assert isinstance(recv_event, RecvEvent)
        if isinstance(send_event.msg.payload, Marker):
            continue  # control traffic: defines the cut, never violates it
        if inside(ridx, recv_event.proc) and not inside(sidx, send_event.proc):
            violations.append(
                f"snapshot {snap_id}: message {uid} received inside the cut "
                f"(by {recv_event.proc} at [{ridx}]) but sent outside "
                f"(by {send_event.proc} at [{sidx}])"
            )
    return violations


def assemble_global_snapshot(
    processes: list[SnapshotProcess], snap_id: int
) -> dict[int, LocalSnapshot]:
    """Collect each participant's local snapshot (post-run convenience)."""
    return {
        p.pid: p.snapshots[snap_id]
        for p in processes
        if snap_id in p.snapshots
    }
