"""Accelerated scheduler surface (see ``repro.sim.scheduler``).

``Scheduler``, ``TimerHandle``, and ``_Entry`` come straight from the C
extension; the storage pool stays in Python (it is cold — touched once
per shard) but keeps the layout the compiled scheduler caches at adopt
time: ``_entries`` is created once and never rebound, because the C
``Scheduler`` holds a direct reference to the list object.

Unlike the pure pool, the compiled scheduler's heap holds ``_Entry``
objects directly (no ``(time, seq, entry)`` triples — the C heap compares
struct fields), so :meth:`SchedulerStoragePool.recycle` iterates entries,
not triples. Everything else mirrors the pure class method for method.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable, Iterator

from repro._accel._ccore import (  # noqa: F401  (re-exported surface)
    Scheduler,
    TimerHandle,
    _Entry,
    _noop,
)
from repro._accel import _ccore

_MIN_COMPACT_SIZE = 32
"""Heaps smaller than this are never compacted (same bound as pure)."""


class SchedulerStoragePool:
    """Recycles scheduler heap storage across many short-lived runs.

    Same contract as the pure ``SchedulerStoragePool`` (end-of-life-only
    recycling, ``max_entries`` bound, reuse/recycle counters the tests
    assert on), adapted to the compiled core's entry-list heap.
    """

    def __init__(self, max_entries: int = 65_536):
        self._max_entries = max_entries
        # Created once, never rebound: the C Scheduler caches this exact
        # list object at adopt() time and pops recycled entries from it.
        self._entries: list[_Entry] = []
        self._lists: list[list[_Entry]] = []
        self._burst_lists: list[list] = []
        self._schedulers: dict[int, Scheduler] = {}
        #: Entries handed out from the free list instead of allocated.
        self.entries_reused = 0
        #: Entries accepted back by :meth:`recycle`.
        self.entries_recycled = 0
        #: Delivery bursts reused instead of allocated.
        self.bursts_reused = 0
        #: Delivery bursts accepted back by :meth:`recycle_bursts`.
        self.bursts_recycled = 0

    # -- acquisition (called by the compiled Scheduler) -----------------

    def adopt(self, scheduler: Scheduler) -> list[_Entry]:
        """Register a newborn scheduler; returns its heap list to use."""
        self._schedulers[id(scheduler)] = scheduler
        return self._lists.pop() if self._lists else []

    def adopt_bursts(self) -> list:
        """A delivery-burst free list for a newborn network (may be empty)."""
        return self._burst_lists.pop() if self._burst_lists else []

    def recycle_bursts(self, free: list, reused: int = 0) -> int:
        """Take back a dead network's burst free list; returns its size."""
        del free[self._max_entries:]
        self.bursts_recycled += len(free)
        self.bursts_reused += reused
        self._burst_lists.append(free)
        return len(free)

    def discard(self, scheduler: Scheduler) -> None:
        """Forget an adopted scheduler (it released its storage itself)."""
        self._schedulers.pop(id(scheduler), None)

    def acquire_entry(
        self,
        time: float,
        seq: int,
        callback: Callable[[], None],
        periodic: bool,
    ) -> _Entry:
        """A ready-to-queue entry, recycled when the free list allows."""
        if self._entries:
            self.entries_reused += 1
            entry = self._entries.pop()
            entry.time = time
            entry.seq = seq
            entry.callback = callback
            entry.cancelled = False
            entry.periodic = periodic
            entry.finished = False
            entry.tracked = True
            return entry
        return _Entry(time, seq, callback, periodic=periodic)

    # -- release --------------------------------------------------------

    def recycle(self, queue: list[_Entry]) -> int:
        """Take back a dead scheduler's queue; returns entries recycled.

        The compiled heap stores entries directly, so ``queue`` is a list
        of ``_Entry`` objects. As in the pure pool, *every* entry has its
        callback cleared (dropped entries must not keep closures alive),
        and only up to ``max_entries`` are retained.
        """
        recycled = 0
        entries = self._entries
        capacity = self._max_entries
        for entry in queue:
            entry.callback = _noop  # drop closure refs (worlds, messages)
            if len(entries) < capacity:
                entries.append(entry)
                recycled += 1
        self.entries_recycled += recycled
        queue.clear()
        self._lists.append(queue)
        return recycled

    def reclaim(self) -> int:
        """Release storage of every scheduler adopted since the last call."""
        recycled = 0
        for scheduler in list(self._schedulers.values()):
            recycled += scheduler.release_storage()
        self._schedulers.clear()
        return recycled


@contextmanager
def shared_scheduler_storage(
    pool: SchedulerStoragePool | None = None,
) -> Iterator[SchedulerStoragePool]:
    """Activate a storage pool for every Scheduler built in this block.

    Same ambient-pool contract as the pure context manager; the active
    pool lives in the extension (``_ccore``) where the compiled
    ``Scheduler.__init__`` reads it, and nesting restores the previous
    pool on exit.
    """
    if pool is None:
        pool = SchedulerStoragePool()
    previous = _ccore._get_active_pool()
    _ccore._set_active_pool(pool)
    try:
        yield pool
    finally:
        _ccore._set_active_pool(previous)
