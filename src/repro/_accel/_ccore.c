/* Compiled event core: C implementations of the scheduler, network burst
 * path, history builder, and delay kernels.
 *
 * The pure-Python modules (repro.sim.scheduler, repro.sim.network,
 * repro.core.history, repro.sim.delays) are the authoritative reference;
 * everything here must be *bit-identical* to them — same callback order,
 * same rng stream, same counters, same error messages. Cross-core digest
 * property tests enforce that (tests/accel/).
 *
 * Layout mirrors the pure modules:
 *   _Entry / TimerHandle / Scheduler   <- repro.sim.scheduler
 *   _ChannelState / _Burst / NetworkCore <- repro.sim.network
 *   HistoryBuilderBase                 <- repro.core.history
 *   batch_sample                       <- repro.sim.delays sample_batch
 */
#define PY_SSIZE_T_CLEAN
#include <Python.h>
#include <structmember.h>
#include <math.h>

/* ------------------------------------------------------------------ */
/* Module-level state (single-phase module; no subinterpreter support) */
/* ------------------------------------------------------------------ */

static PyObject *g_sim_error;        /* repro.errors.SimulationError */
static PyObject *g_send_event;       /* event dataclasses, for dispatch */
static PyObject *g_recv_event;
static PyObject *g_crash_event;
static PyObject *g_failed_event;
static PyObject *g_recover_event;
static PyTypeObject *g_random_type;  /* random.Random, exact-type gate */
static PyTypeObject *g_delay_types[5];  /* registered fast-path classes */
static PyObject *g_active_pool;      /* ambient SchedulerStoragePool */
static PyObject *g_noop;             /* parked-entry callback */
static double g_nv_magic;            /* 4*exp(-0.5)/sqrt(2) (random.py) */

/* interned strings */
static PyObject *s_entries_reused, *s_entries, *s_max_entries;
static PyObject *s_adopt, *s_adopt_bursts, *s_recycle, *s_discard;
static PyObject *s_app, *s_protocol, *s_system;
static PyObject *s_sample, *s_random, *s_deliver;
static PyObject *s_proc, *s_msg, *s_uid, *s_target, *s_incarnation;
static PyObject *s_open_unbatched;

static PyObject *ERR(void)
{
    /* SimulationError once installed; RuntimeError before that. */
    return g_sim_error ? g_sim_error : PyExc_RuntimeError;
}

static int
error_installed(void)
{
    if (g_sim_error == NULL) {
        PyErr_SetString(PyExc_RuntimeError,
                        "repro._accel._ccore is not initialised; import "
                        "repro._accel (which calls _install_error) first");
        return 0;
    }
    return 1;
}

static int
event_types_installed(void)
{
    if (g_recv_event == NULL) {
        PyErr_SetString(PyExc_RuntimeError,
                        "repro._accel._ccore has no event types; import "
                        "repro._accel.history (which calls "
                        "_install_event_types) first");
        return 0;
    }
    return 1;
}

/* obj.<name> += 1 for Python-level counters on the storage pool. */
static int
incr_attr(PyObject *obj, PyObject *name)
{
    PyObject *v = PyObject_GetAttr(obj, name);
    if (v == NULL)
        return -1;
    PyObject *one = PyLong_FromLong(1);
    PyObject *nv = PyNumber_Add(v, one);
    Py_DECREF(one);
    Py_DECREF(v);
    if (nv == NULL)
        return -1;
    int r = PyObject_SetAttr(obj, name, nv);
    Py_DECREF(nv);
    return r;
}

/* ------------------------------------------------------------------ */
/* _Entry                                                             */
/* ------------------------------------------------------------------ */

typedef struct {
    PyObject_HEAD
    double time;
    long long seq;
    PyObject *callback;
    char cancelled;
    char periodic;
    char finished;
    char tracked;
} EntryObject;

static PyTypeObject Entry_Type;

#define Entry_CheckExact(op) Py_IS_TYPE((op), &Entry_Type)

static inline int
entry_lt(EntryObject *a, EntryObject *b)
{
    double ta = a->time, tb = b->time;
    return ta < tb || (ta == tb && a->seq < b->seq);
}

static int
Entry_init(EntryObject *self, PyObject *args, PyObject *kwds)
{
    static char *kwlist[] = {"time", "seq", "callback", "cancelled",
                             "periodic", "finished", "tracked", NULL};
    double time;
    long long seq;
    PyObject *callback;
    int cancelled = 0, periodic = 0, finished = 0, tracked = 1;
    if (!PyArg_ParseTupleAndKeywords(args, kwds, "dLO|pppp", kwlist,
                                     &time, &seq, &callback, &cancelled,
                                     &periodic, &finished, &tracked))
        return -1;
    self->time = time;
    self->seq = seq;
    Py_XSETREF(self->callback, Py_NewRef(callback));
    self->cancelled = (char)cancelled;
    self->periodic = (char)periodic;
    self->finished = (char)finished;
    self->tracked = (char)tracked;
    return 0;
}

static int
Entry_traverse(EntryObject *self, visitproc visit, void *arg)
{
    Py_VISIT(self->callback);
    return 0;
}

static int
Entry_clear(EntryObject *self)
{
    Py_CLEAR(self->callback);
    return 0;
}

static void
Entry_dealloc(EntryObject *self)
{
    PyObject_GC_UnTrack(self);
    Py_XDECREF(self->callback);
    Py_TYPE(self)->tp_free((PyObject *)self);
}

static PyObject *
Entry_richcompare(PyObject *a, PyObject *b, int op)
{
    if (op != Py_LT || !Entry_CheckExact(a) || !Entry_CheckExact(b))
        Py_RETURN_NOTIMPLEMENTED;
    if (entry_lt((EntryObject *)a, (EntryObject *)b))
        Py_RETURN_TRUE;
    Py_RETURN_FALSE;
}

static PyObject *
Entry_repr(EntryObject *self)
{
    char flags[8];
    char *p = flags;
    if (self->cancelled) *p++ = 'C';
    if (self->periodic)  *p++ = 'P';
    if (self->finished)  *p++ = 'F';
    *p = '\0';
    PyObject *t = PyFloat_FromDouble(self->time);
    if (t == NULL)
        return NULL;
    PyObject *r;
    if (flags[0])
        r = PyUnicode_FromFormat("_Entry(t=%S, seq=%lld, %s)", t,
                                 self->seq, flags);
    else
        r = PyUnicode_FromFormat("_Entry(t=%S, seq=%lld)", t, self->seq);
    Py_DECREF(t);
    return r;
}

static PyMemberDef Entry_members[] = {
    {"time", T_DOUBLE, offsetof(EntryObject, time), 0, NULL},
    {"seq", T_LONGLONG, offsetof(EntryObject, seq), 0, NULL},
    {"callback", T_OBJECT_EX, offsetof(EntryObject, callback), 0, NULL},
    {"cancelled", T_BOOL, offsetof(EntryObject, cancelled), 0, NULL},
    {"periodic", T_BOOL, offsetof(EntryObject, periodic), 0, NULL},
    {"finished", T_BOOL, offsetof(EntryObject, finished), 0, NULL},
    {"tracked", T_BOOL, offsetof(EntryObject, tracked), 0, NULL},
    {NULL}
};

static PyTypeObject Entry_Type = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro._accel._ccore._Entry",
    .tp_basicsize = sizeof(EntryObject),
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC |
                Py_TPFLAGS_BASETYPE,
    .tp_new = PyType_GenericNew,
    .tp_init = (initproc)Entry_init,
    .tp_dealloc = (destructor)Entry_dealloc,
    .tp_traverse = (traverseproc)Entry_traverse,
    .tp_clear = (inquiry)Entry_clear,
    .tp_richcompare = Entry_richcompare,
    .tp_repr = (reprfunc)Entry_repr,
    .tp_members = Entry_members,
    .tp_doc = "One queued callback, ordered by (time, seq).",
};

/* ------------------------------------------------------------------ */
/* Heap of _Entry objects (keys live in the C struct)                 */
/* ------------------------------------------------------------------ */

static void
heap_siftdown(PyObject *heap, Py_ssize_t startpos, Py_ssize_t pos)
{
    EntryObject *newitem = (EntryObject *)PyList_GET_ITEM(heap, pos);
    while (pos > startpos) {
        Py_ssize_t parentpos = (pos - 1) >> 1;
        EntryObject *parent =
            (EntryObject *)PyList_GET_ITEM(heap, parentpos);
        if (!entry_lt(newitem, parent))
            break;
        PyList_SET_ITEM(heap, pos, (PyObject *)parent);
        pos = parentpos;
    }
    PyList_SET_ITEM(heap, pos, (PyObject *)newitem);
}

static void
heap_siftup(PyObject *heap, Py_ssize_t pos)
{
    Py_ssize_t endpos = PyList_GET_SIZE(heap);
    Py_ssize_t startpos = pos;
    EntryObject *newitem = (EntryObject *)PyList_GET_ITEM(heap, pos);
    Py_ssize_t childpos = 2 * pos + 1;
    while (childpos < endpos) {
        Py_ssize_t rightpos = childpos + 1;
        if (rightpos < endpos &&
            !entry_lt((EntryObject *)PyList_GET_ITEM(heap, childpos),
                      (EntryObject *)PyList_GET_ITEM(heap, rightpos)))
            childpos = rightpos;
        PyList_SET_ITEM(heap, pos, PyList_GET_ITEM(heap, childpos));
        pos = childpos;
        childpos = 2 * pos + 1;
    }
    PyList_SET_ITEM(heap, pos, (PyObject *)newitem);
    heap_siftdown(heap, startpos, pos);
}

static int
heap_push(PyObject *heap, PyObject *entry)
{
    if (PyList_Append(heap, entry) < 0)
        return -1;
    heap_siftdown(heap, 0, PyList_GET_SIZE(heap) - 1);
    return 0;
}

/* Returns a NEW reference; heap must be non-empty. */
static PyObject *
heap_pop(PyObject *heap)
{
    Py_ssize_t n = PyList_GET_SIZE(heap);
    PyObject *last = PyList_GET_ITEM(heap, n - 1);
    Py_INCREF(last);
    if (PyList_SetSlice(heap, n - 1, n, NULL) < 0) {
        Py_DECREF(last);
        return NULL;
    }
    if (PyList_GET_SIZE(heap) > 0) {
        PyObject *ret = PyList_GET_ITEM(heap, 0);  /* ref moves to us */
        PyList_SET_ITEM(heap, 0, last);
        heap_siftup(heap, 0);
        return ret;
    }
    return last;
}

static void
heap_heapify(PyObject *heap)
{
    Py_ssize_t n = PyList_GET_SIZE(heap);
    for (Py_ssize_t i = n / 2 - 1; i >= 0; i--)
        heap_siftup(heap, i);
}

/* ------------------------------------------------------------------ */
/* Scheduler                                                          */
/* ------------------------------------------------------------------ */

#define MIN_COMPACT_SIZE 32

typedef struct {
    PyObject_HEAD
    PyObject *queue;         /* list of EntryObject* (heap order) */
    PyObject *pool;          /* SchedulerStoragePool or NULL */
    PyObject *pool_entries;  /* pool._entries (list) or NULL */
    Py_ssize_t pool_max;
    long long seq;
    long long last_seq;
    long long processed;
    double now;
    Py_ssize_t pending;
    Py_ssize_t pending_nonperiodic;
    Py_ssize_t cancelled_in_heap;
    char stop_requested;
} SchedulerObject;

static PyTypeObject Scheduler_Type;

#define Scheduler_Check(op) PyObject_TypeCheck((op), &Scheduler_Type)

/* A queue-ready entry, recycled from the pool free list when possible.
 * Mirrors Scheduler._new_entry (including the entries_reused counter). */
static EntryObject *
scheduler_new_entry(SchedulerObject *self, double time, long long seq,
                    PyObject *callback, int periodic, int tracked)
{
    PyObject *free_list = self->pool_entries;
    if (free_list != NULL && PyList_GET_SIZE(free_list) > 0) {
        Py_ssize_t k = PyList_GET_SIZE(free_list) - 1;
        PyObject *item = PyList_GET_ITEM(free_list, k);  /* borrowed */
        if (Entry_CheckExact(item)) {
            if (incr_attr(self->pool, s_entries_reused) < 0)
                return NULL;
            Py_INCREF(item);
            if (PyList_SetSlice(free_list, k, k + 1, NULL) < 0) {
                Py_DECREF(item);
                return NULL;
            }
            EntryObject *e = (EntryObject *)item;
            e->time = time;
            e->seq = seq;
            Py_XSETREF(e->callback, Py_NewRef(callback));
            e->cancelled = 0;
            e->periodic = (char)periodic;
            e->finished = 0;
            e->tracked = (char)tracked;
            return e;
        }
    }
    EntryObject *e =
        (EntryObject *)Entry_Type.tp_alloc(&Entry_Type, 0);
    if (e == NULL)
        return NULL;
    e->time = time;
    e->seq = seq;
    e->callback = Py_NewRef(callback);
    e->cancelled = 0;
    e->periodic = (char)periodic;
    e->finished = 0;
    e->tracked = (char)tracked;
    return e;
}

static int
Scheduler_init(SchedulerObject *self, PyObject *args, PyObject *kwds)
{
    if (!error_installed())
        return -1;
    if ((args && PyTuple_GET_SIZE(args)) || (kwds && PyDict_GET_SIZE(kwds))) {
        PyErr_SetString(PyExc_TypeError, "Scheduler() takes no arguments");
        return -1;
    }
    Py_CLEAR(self->queue);
    Py_CLEAR(self->pool);
    Py_CLEAR(self->pool_entries);
    self->pool_max = 0;
    if (g_active_pool != NULL) {
        self->pool = Py_NewRef(g_active_pool);
        PyObject *lst = PyObject_CallMethodObjArgs(
            self->pool, s_adopt, (PyObject *)self, NULL);
        if (lst == NULL)
            return -1;
        if (!PyList_CheckExact(lst)) {
            Py_DECREF(lst);
            PyErr_SetString(PyExc_TypeError,
                            "pool.adopt() must return a list");
            return -1;
        }
        self->queue = lst;
        PyObject *entries = PyObject_GetAttr(self->pool, s_entries);
        if (entries == NULL)
            return -1;
        if (!PyList_CheckExact(entries)) {
            Py_DECREF(entries);
            PyErr_SetString(PyExc_TypeError,
                            "pool._entries must be a list");
            return -1;
        }
        self->pool_entries = entries;
        PyObject *maxobj = PyObject_GetAttr(self->pool, s_max_entries);
        if (maxobj == NULL)
            return -1;
        self->pool_max = PyLong_AsSsize_t(maxobj);
        Py_DECREF(maxobj);
        if (self->pool_max == -1 && PyErr_Occurred())
            return -1;
    }
    else {
        self->queue = PyList_New(0);
        if (self->queue == NULL)
            return -1;
    }
    self->seq = 0;
    self->now = 0.0;
    self->processed = 0;
    self->pending = 0;
    self->pending_nonperiodic = 0;
    self->cancelled_in_heap = 0;
    self->last_seq = -1;
    self->stop_requested = 0;
    return 0;
}

static int
Scheduler_traverse(SchedulerObject *self, visitproc visit, void *arg)
{
    Py_VISIT(self->queue);
    Py_VISIT(self->pool);
    Py_VISIT(self->pool_entries);
    return 0;
}

static int
Scheduler_clear_refs(SchedulerObject *self)
{
    Py_CLEAR(self->queue);
    Py_CLEAR(self->pool);
    Py_CLEAR(self->pool_entries);
    return 0;
}

static void
Scheduler_dealloc(SchedulerObject *self)
{
    PyObject_GC_UnTrack(self);
    Scheduler_clear_refs(self);
    Py_TYPE(self)->tp_free((PyObject *)self);
}

static int
scheduler_compact(SchedulerObject *self)
{
    PyObject *queue = self->queue;
    Py_ssize_t n = PyList_GET_SIZE(queue);
    PyObject *kept = PyList_New(0);
    if (kept == NULL)
        return -1;
    for (Py_ssize_t i = 0; i < n; i++) {
        PyObject *item = PyList_GET_ITEM(queue, i);
        if (!((EntryObject *)item)->cancelled &&
            PyList_Append(kept, item) < 0) {
            Py_DECREF(kept);
            return -1;
        }
    }
    /* In place: run loops hold the list in a local binding. */
    int r = PyList_SetSlice(queue, 0, PyList_GET_SIZE(queue), kept);
    Py_DECREF(kept);
    if (r < 0)
        return -1;
    heap_heapify(queue);
    self->cancelled_in_heap = 0;
    return 0;
}

/* Accounting for a first-time cancellation (TimerHandle.cancel). */
static int
scheduler_on_cancel(SchedulerObject *self, EntryObject *entry)
{
    self->pending -= 1;
    if (!entry->periodic)
        self->pending_nonperiodic -= 1;
    self->cancelled_in_heap += 1;
    Py_ssize_t qn = PyList_GET_SIZE(self->queue);
    if (qn >= MIN_COMPACT_SIZE && self->cancelled_in_heap * 2 > qn)
        return scheduler_compact(self);
    return 0;
}

/* Shared tail of schedule_at/schedule_callback_at/reschedule_interrupted:
 * build the entry, push, bump the pending counters. */
static int
scheduler_push_new(SchedulerObject *self, double time, long long seq,
                   PyObject *callback, int periodic, int tracked)
{
    EntryObject *entry =
        scheduler_new_entry(self, time, seq, callback, periodic, tracked);
    if (entry == NULL)
        return -1;
    int r = heap_push(self->queue, (PyObject *)entry);
    Py_DECREF(entry);
    if (r < 0)
        return -1;
    self->pending += 1;
    if (!periodic)
        self->pending_nonperiodic += 1;
    return 0;
}

/* Raise SimulationError "...: {time} < now {now}" with the *original*
 * time object (pure formats the int a caller passed, not float(time)). */
static void
raise_past(const char *what, PyObject *time_obj, double now)
{
    PyObject *now_f = PyFloat_FromDouble(now);
    if (now_f == NULL)
        return;
    PyErr_Format(ERR(), "cannot %s into the past: %S < now %S",
                 what, time_obj, now_f);
    Py_DECREF(now_f);
}

/* ------------------------------------------------------------------ */
/* TimerHandle                                                        */
/* ------------------------------------------------------------------ */

typedef struct {
    PyObject_HEAD
    PyObject *entry;      /* EntryObject */
    PyObject *scheduler;  /* SchedulerObject */
} TimerHandleObject;

static PyTypeObject TimerHandle_Type;

static int
TimerHandle_init(TimerHandleObject *self, PyObject *args, PyObject *kwds)
{
    static char *kwlist[] = {"entry", "scheduler", NULL};
    PyObject *entry, *scheduler;
    if (!PyArg_ParseTupleAndKeywords(args, kwds, "O!O!", kwlist,
                                     &Entry_Type, &entry,
                                     &Scheduler_Type, &scheduler))
        return -1;
    Py_XSETREF(self->entry, Py_NewRef(entry));
    Py_XSETREF(self->scheduler, Py_NewRef(scheduler));
    return 0;
}

static int
TimerHandle_traverse(TimerHandleObject *self, visitproc visit, void *arg)
{
    Py_VISIT(self->entry);
    Py_VISIT(self->scheduler);
    return 0;
}

static int
TimerHandle_clear(TimerHandleObject *self)
{
    Py_CLEAR(self->entry);
    Py_CLEAR(self->scheduler);
    return 0;
}

static void
TimerHandle_dealloc(TimerHandleObject *self)
{
    PyObject_GC_UnTrack(self);
    TimerHandle_clear(self);
    Py_TYPE(self)->tp_free((PyObject *)self);
}

static PyObject *
TimerHandle_cancel(TimerHandleObject *self, PyObject *noarg)
{
    EntryObject *entry = (EntryObject *)self->entry;
    if (entry->cancelled)
        Py_RETURN_NONE;
    entry->cancelled = 1;
    if (!entry->finished &&
        scheduler_on_cancel((SchedulerObject *)self->scheduler, entry) < 0)
        return NULL;
    Py_RETURN_NONE;
}

static PyObject *
TimerHandle_get_cancelled(TimerHandleObject *self, void *closure)
{
    return PyBool_FromLong(((EntryObject *)self->entry)->cancelled);
}

static PyObject *
TimerHandle_get_active(TimerHandleObject *self, void *closure)
{
    EntryObject *entry = (EntryObject *)self->entry;
    return PyBool_FromLong(!entry->cancelled && !entry->finished);
}

static PyObject *
TimerHandle_get_when(TimerHandleObject *self, void *closure)
{
    return PyFloat_FromDouble(((EntryObject *)self->entry)->time);
}

static PyMethodDef TimerHandle_methods[] = {
    {"cancel", (PyCFunction)TimerHandle_cancel, METH_NOARGS,
     "Prevent the callback from running (idempotent)."},
    {NULL}
};

static PyGetSetDef TimerHandle_getset[] = {
    {"cancelled", (getter)TimerHandle_get_cancelled, NULL, NULL, NULL},
    {"active", (getter)TimerHandle_get_active, NULL, NULL, NULL},
    {"when", (getter)TimerHandle_get_when, NULL, NULL, NULL},
    {NULL}
};

static PyMemberDef TimerHandle_members[] = {
    {"_entry", T_OBJECT_EX, offsetof(TimerHandleObject, entry), READONLY,
     NULL},
    {"_scheduler", T_OBJECT_EX, offsetof(TimerHandleObject, scheduler),
     READONLY, NULL},
    {NULL}
};

static PyTypeObject TimerHandle_Type = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro._accel._ccore.TimerHandle",
    .tp_basicsize = sizeof(TimerHandleObject),
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC |
                Py_TPFLAGS_BASETYPE,
    .tp_new = PyType_GenericNew,
    .tp_init = (initproc)TimerHandle_init,
    .tp_dealloc = (destructor)TimerHandle_dealloc,
    .tp_traverse = (traverseproc)TimerHandle_traverse,
    .tp_clear = (inquiry)TimerHandle_clear,
    .tp_methods = TimerHandle_methods,
    .tp_getset = TimerHandle_getset,
    .tp_members = TimerHandle_members,
    .tp_doc = "Cancellation handle for a scheduled callback.",
};

/* ------------------------------------------------------------------ */
/* Scheduler methods                                                  */
/* ------------------------------------------------------------------ */

static PyObject *
make_handle(EntryObject *entry, SchedulerObject *scheduler)
{
    TimerHandleObject *h = (TimerHandleObject *)
        TimerHandle_Type.tp_alloc(&TimerHandle_Type, 0);
    if (h == NULL)
        return NULL;
    h->entry = Py_NewRef((PyObject *)entry);
    h->scheduler = Py_NewRef((PyObject *)scheduler);
    return (PyObject *)h;
}

static PyObject *
Scheduler_schedule_at(SchedulerObject *self, PyObject *args, PyObject *kwds)
{
    static char *kwlist[] = {"time", "callback", "periodic", NULL};
    PyObject *time_obj, *callback, *periodic_obj = Py_False;
    if (!PyArg_ParseTupleAndKeywords(args, kwds, "OO|O", kwlist,
                                     &time_obj, &callback, &periodic_obj))
        return NULL;
    double time = PyFloat_AsDouble(time_obj);
    if (time == -1.0 && PyErr_Occurred())
        return NULL;
    int periodic = PyObject_IsTrue(periodic_obj);
    if (periodic < 0)
        return NULL;
    if (time < self->now) {
        raise_past("schedule", time_obj, self->now);
        return NULL;
    }
    long long seq = self->seq;
    self->seq = seq + 1;
    self->last_seq = seq;
    EntryObject *entry =
        scheduler_new_entry(self, time, seq, callback, periodic, 1);
    if (entry == NULL)
        return NULL;
    if (heap_push(self->queue, (PyObject *)entry) < 0) {
        Py_DECREF(entry);
        return NULL;
    }
    self->pending += 1;
    if (!periodic)
        self->pending_nonperiodic += 1;
    PyObject *handle = make_handle(entry, self);
    Py_DECREF(entry);
    return handle;
}

static PyObject *
Scheduler_schedule(SchedulerObject *self, PyObject *args, PyObject *kwds)
{
    static char *kwlist[] = {"delay", "callback", "periodic", NULL};
    PyObject *delay_obj, *callback, *periodic_obj = Py_False;
    if (!PyArg_ParseTupleAndKeywords(args, kwds, "OO|O", kwlist,
                                     &delay_obj, &callback, &periodic_obj))
        return NULL;
    double delay = PyFloat_AsDouble(delay_obj);
    if (delay == -1.0 && PyErr_Occurred())
        return NULL;
    if (delay < 0) {
        PyErr_Format(ERR(), "negative delay %S", delay_obj);
        return NULL;
    }
    int periodic = PyObject_IsTrue(periodic_obj);
    if (periodic < 0)
        return NULL;
    double time = self->now + delay;
    /* time >= now by construction; no past check needed */
    long long seq = self->seq;
    self->seq = seq + 1;
    self->last_seq = seq;
    EntryObject *entry =
        scheduler_new_entry(self, time, seq, callback, periodic, 1);
    if (entry == NULL)
        return NULL;
    if (heap_push(self->queue, (PyObject *)entry) < 0) {
        Py_DECREF(entry);
        return NULL;
    }
    self->pending += 1;
    if (!periodic)
        self->pending_nonperiodic += 1;
    PyObject *handle = make_handle(entry, self);
    Py_DECREF(entry);
    return handle;
}

static PyObject *
Scheduler_schedule_callback_at(SchedulerObject *self, PyObject *args,
                               PyObject *kwds)
{
    static char *kwlist[] = {"time", "callback", "periodic", NULL};
    PyObject *time_obj, *callback, *periodic_obj = Py_False;
    if (!PyArg_ParseTupleAndKeywords(args, kwds, "OO|O", kwlist,
                                     &time_obj, &callback, &periodic_obj))
        return NULL;
    double time = PyFloat_AsDouble(time_obj);
    if (time == -1.0 && PyErr_Occurred())
        return NULL;
    int periodic = PyObject_IsTrue(periodic_obj);
    if (periodic < 0)
        return NULL;
    if (time < self->now) {
        raise_past("schedule", time_obj, self->now);
        return NULL;
    }
    long long seq = self->seq;
    self->seq = seq + 1;
    self->last_seq = seq;
    if (scheduler_push_new(self, time, seq, callback, periodic, 0) < 0)
        return NULL;
    Py_RETURN_NONE;
}

static PyObject *
Scheduler_reschedule_interrupted(SchedulerObject *self, PyObject *args,
                                 PyObject *kwds)
{
    static char *kwlist[] = {"time", "seq", "callback", "periodic", NULL};
    PyObject *time_obj, *callback, *periodic_obj = Py_False;
    long long seq;
    if (!PyArg_ParseTupleAndKeywords(args, kwds, "OLO|O", kwlist,
                                     &time_obj, &seq, &callback,
                                     &periodic_obj))
        return NULL;
    double time = PyFloat_AsDouble(time_obj);
    if (time == -1.0 && PyErr_Occurred())
        return NULL;
    int periodic = PyObject_IsTrue(periodic_obj);
    if (periodic < 0)
        return NULL;
    if (time < self->now) {
        raise_past("reschedule", time_obj, self->now);
        return NULL;
    }
    /* last_seq deliberately not advanced (burst-resume contract). */
    if (scheduler_push_new(self, time, seq, callback, periodic, 0) < 0)
        return NULL;
    Py_RETURN_NONE;
}

/* reschedule_interrupted for the C burst-resume path (no arg objects). */
static int
scheduler_resched_c(SchedulerObject *self, double time, long long seq,
                    PyObject *callback, int periodic)
{
    if (time < self->now) {
        PyObject *t = PyFloat_FromDouble(time);
        if (t != NULL) {
            raise_past("reschedule", t, self->now);
            Py_DECREF(t);
        }
        return -1;
    }
    return scheduler_push_new(self, time, seq, callback, periodic, 0);
}

/* Pop-time recycling of a fired handle-less entry (run/step loops). */
static int
recycle_fired(SchedulerObject *self, EntryObject *entry)
{
    if (!entry->tracked && self->pool_entries != NULL &&
        PyList_GET_SIZE(self->pool_entries) < self->pool_max) {
        Py_XSETREF(entry->callback, Py_NewRef(g_noop));
        return PyList_Append(self->pool_entries, (PyObject *)entry);
    }
    return 0;
}

static PyObject *
Scheduler_step(SchedulerObject *self, PyObject *noarg)
{
    PyObject *queue = self->queue;
    Py_INCREF(queue);
    while (PyList_GET_SIZE(queue) > 0) {
        PyObject *eobj = heap_pop(queue);
        if (eobj == NULL)
            goto error;
        EntryObject *entry = (EntryObject *)eobj;
        if (entry->cancelled) {
            self->cancelled_in_heap -= 1;
            Py_DECREF(eobj);
            continue;
        }
        entry->finished = 1;
        self->pending -= 1;
        if (!entry->periodic)
            self->pending_nonperiodic -= 1;
        self->now = entry->time;
        self->processed += 1;
        PyObject *res = PyObject_CallNoArgs(entry->callback);
        if (res == NULL) {
            Py_DECREF(eobj);
            goto error;
        }
        Py_DECREF(res);
        int r = recycle_fired(self, entry);
        Py_DECREF(eobj);
        if (r < 0)
            goto error;
        Py_DECREF(queue);
        Py_RETURN_TRUE;
    }
    Py_DECREF(queue);
    Py_RETURN_FALSE;
error:
    Py_DECREF(queue);
    return NULL;
}

static PyObject *
Scheduler_run(SchedulerObject *self, PyObject *args, PyObject *kwds)
{
    static char *kwlist[] = {"until", "max_events", NULL};
    PyObject *until_obj = Py_None, *max_obj = Py_None;
    if (!PyArg_ParseTupleAndKeywords(args, kwds, "|OO", kwlist,
                                     &until_obj, &max_obj))
        return NULL;
    int has_until = until_obj != Py_None;
    double until = 0.0;
    if (has_until) {
        until = PyFloat_AsDouble(until_obj);
        if (until == -1.0 && PyErr_Occurred())
            return NULL;
    }
    int has_max = max_obj != Py_None;
    long long max_events = 0;
    if (has_max) {
        int overflow = 0;
        max_events = PyLong_AsLongLongAndOverflow(max_obj, &overflow);
        if (max_events == -1 && !overflow && PyErr_Occurred())
            return NULL;
        if (overflow > 0)
            max_events = LLONG_MAX;
        else if (overflow < 0)
            max_events = LLONG_MIN;
    }
    long long executed = 0;
    PyObject *queue = self->queue;  /* compact mutates in place */
    Py_INCREF(queue);
    while (PyList_GET_SIZE(queue) > 0) {
        if (self->stop_requested)
            break;
        if (has_max && executed >= max_events)
            break;
        EntryObject *head = (EntryObject *)PyList_GET_ITEM(queue, 0);
        if (head->cancelled) {
            PyObject *popped = heap_pop(queue);
            if (popped == NULL)
                goto error;
            Py_DECREF(popped);
            self->cancelled_in_heap -= 1;
            continue;
        }
        double time = head->time;
        if (has_until && time > until) {
            if (until > self->now)
                self->now = until;
            break;
        }
        PyObject *eobj = heap_pop(queue);
        if (eobj == NULL)
            goto error;
        EntryObject *entry = (EntryObject *)eobj;
        entry->finished = 1;
        self->pending -= 1;
        if (!entry->periodic)
            self->pending_nonperiodic -= 1;
        self->now = time;
        self->processed += 1;
        PyObject *res = PyObject_CallNoArgs(entry->callback);
        if (res == NULL) {
            Py_DECREF(eobj);
            goto error;
        }
        Py_DECREF(res);
        executed += 1;
        int r = recycle_fired(self, entry);
        Py_DECREF(eobj);
        if (r < 0)
            goto error;
    }
    Py_DECREF(queue);
    return PyLong_FromLongLong(executed);
error:
    Py_DECREF(queue);
    return NULL;
}

static PyObject *
Scheduler_run_to_quiescence(SchedulerObject *self, PyObject *args,
                            PyObject *kwds)
{
    static char *kwlist[] = {"max_events", "ignore_periodic", NULL};
    PyObject *max_obj = NULL;
    int ignore_periodic = 1;
    if (!PyArg_ParseTupleAndKeywords(args, kwds, "|Op", kwlist,
                                     &max_obj, &ignore_periodic))
        return NULL;
    long long max_events = 1000000;
    if (max_obj != NULL) {
        int overflow = 0;
        max_events = PyLong_AsLongLongAndOverflow(max_obj, &overflow);
        if (max_events == -1 && !overflow && PyErr_Occurred())
            return NULL;
        if (overflow > 0)
            max_events = LLONG_MAX;
        else if (overflow < 0)
            max_events = LLONG_MIN;
    }
    long long executed = 0;
    PyObject *queue = self->queue;
    Py_INCREF(queue);
    for (;;) {
        if (self->stop_requested)
            break;
        Py_ssize_t remaining =
            ignore_periodic ? self->pending_nonperiodic : self->pending;
        if (remaining == 0)
            break;
        if (executed >= max_events) {
            if (max_obj != NULL)
                PyErr_Format(ERR(),
                             "no quiescence after %S events; likely a "
                             "livelock in the system under test", max_obj);
            else
                PyErr_Format(ERR(),
                             "no quiescence after %lld events; likely a "
                             "livelock in the system under test",
                             max_events);
            goto error;
        }
        EntryObject *entry = NULL;
        PyObject *eobj = NULL;
        while (PyList_GET_SIZE(queue) > 0) {
            PyObject *popped = heap_pop(queue);
            if (popped == NULL)
                goto error;
            if (((EntryObject *)popped)->cancelled) {
                self->cancelled_in_heap -= 1;
                Py_DECREF(popped);
                continue;
            }
            eobj = popped;
            entry = (EntryObject *)popped;
            break;
        }
        if (entry == NULL)
            break;
        entry->finished = 1;
        self->pending -= 1;
        if (!entry->periodic)
            self->pending_nonperiodic -= 1;
        self->now = entry->time;
        self->processed += 1;
        PyObject *res = PyObject_CallNoArgs(entry->callback);
        if (res == NULL) {
            Py_DECREF(eobj);
            goto error;
        }
        Py_DECREF(res);
        executed += 1;
        int r = recycle_fired(self, entry);
        Py_DECREF(eobj);
        if (r < 0)
            goto error;
    }
    Py_DECREF(queue);
    return PyLong_FromLongLong(executed);
error:
    Py_DECREF(queue);
    return NULL;
}

static PyObject *
Scheduler__peek(SchedulerObject *self, PyObject *noarg)
{
    PyObject *queue = self->queue;
    while (PyList_GET_SIZE(queue) > 0 &&
           ((EntryObject *)PyList_GET_ITEM(queue, 0))->cancelled) {
        PyObject *popped = heap_pop(queue);
        if (popped == NULL)
            return NULL;
        Py_DECREF(popped);
        self->cancelled_in_heap -= 1;
    }
    if (PyList_GET_SIZE(queue) > 0)
        return Py_NewRef(PyList_GET_ITEM(queue, 0));
    Py_RETURN_NONE;
}

static PyObject *
Scheduler__on_cancel(SchedulerObject *self, PyObject *entry)
{
    if (!Entry_CheckExact(entry)) {
        PyErr_SetString(PyExc_TypeError, "_on_cancel expects an _Entry");
        return NULL;
    }
    if (scheduler_on_cancel(self, (EntryObject *)entry) < 0)
        return NULL;
    Py_RETURN_NONE;
}

static PyObject *
Scheduler__compact(SchedulerObject *self, PyObject *noarg)
{
    if (scheduler_compact(self) < 0)
        return NULL;
    Py_RETURN_NONE;
}

static PyObject *
Scheduler_request_stop(SchedulerObject *self, PyObject *noarg)
{
    self->stop_requested = 1;
    Py_RETURN_NONE;
}

static PyObject *
Scheduler_clear_stop(SchedulerObject *self, PyObject *noarg)
{
    self->stop_requested = 0;
    Py_RETURN_NONE;
}

static PyObject *
Scheduler_pending_nonperiodic(SchedulerObject *self, PyObject *noarg)
{
    return PyLong_FromSsize_t(self->pending_nonperiodic);
}

static PyObject *
Scheduler_release_storage(SchedulerObject *self, PyObject *noarg)
{
    if (self->pool == NULL)
        return PyLong_FromLong(0);
    PyObject *pool = self->pool;  /* release once, then detach */
    self->pool = NULL;
    Py_CLEAR(self->pool_entries);
    self->pool_max = 0;
    PyObject *residual = PyObject_CallMethodObjArgs(
        pool, s_recycle, self->queue, NULL);
    if (residual == NULL) {
        Py_DECREF(pool);
        return NULL;
    }
    PyObject *dr = PyObject_CallMethodObjArgs(
        pool, s_discard, (PyObject *)self, NULL);
    Py_DECREF(pool);
    if (dr == NULL) {
        Py_DECREF(residual);
        return NULL;
    }
    Py_DECREF(dr);
    PyObject *fresh = PyList_New(0);
    if (fresh == NULL) {
        Py_DECREF(residual);
        return NULL;
    }
    Py_SETREF(self->queue, fresh);
    self->pending = 0;
    self->pending_nonperiodic = 0;
    self->cancelled_in_heap = 0;
    return residual;
}

static PyObject *
Scheduler_clear_queue(SchedulerObject *self, PyObject *noarg)
{
    PyObject *queue = self->queue;
    Py_ssize_t n = PyList_GET_SIZE(queue);
    for (Py_ssize_t i = 0; i < n; i++) {
        EntryObject *entry = (EntryObject *)PyList_GET_ITEM(queue, i);
        Py_XSETREF(entry->callback, Py_NewRef(g_noop));
    }
    if (PyList_SetSlice(queue, 0, PyList_GET_SIZE(queue), NULL) < 0)
        return NULL;
    self->pending = 0;
    self->pending_nonperiodic = 0;
    self->cancelled_in_heap = 0;
    Py_RETURN_NONE;
}

static PyObject *
Scheduler_get_now(SchedulerObject *self, void *closure)
{
    return PyFloat_FromDouble(self->now);
}

static PyObject *
Scheduler_get_processed(SchedulerObject *self, void *closure)
{
    return PyLong_FromLongLong(self->processed);
}

static PyObject *
Scheduler_get_pending(SchedulerObject *self, void *closure)
{
    return PyLong_FromSsize_t(self->pending);
}

static PyObject *
Scheduler_get_last_seq(SchedulerObject *self, void *closure)
{
    return PyLong_FromLongLong(self->last_seq);
}

static PyObject *
Scheduler_get_stop_requested(SchedulerObject *self, void *closure)
{
    return PyBool_FromLong(self->stop_requested);
}

static PyObject *
Scheduler_get_pool(SchedulerObject *self, void *closure)
{
    if (self->pool == NULL)
        Py_RETURN_NONE;
    return Py_NewRef(self->pool);
}

static PyMethodDef Scheduler_methods[] = {
    {"schedule", (PyCFunction)Scheduler_schedule,
     METH_VARARGS | METH_KEYWORDS,
     "Run callback after delay units of virtual time."},
    {"schedule_at", (PyCFunction)Scheduler_schedule_at,
     METH_VARARGS | METH_KEYWORDS,
     "Run callback at absolute virtual time (>= now)."},
    {"schedule_callback_at", (PyCFunction)Scheduler_schedule_callback_at,
     METH_VARARGS | METH_KEYWORDS,
     "schedule_at without materialising a TimerHandle."},
    {"reschedule_interrupted",
     (PyCFunction)Scheduler_reschedule_interrupted,
     METH_VARARGS | METH_KEYWORDS,
     "Requeue interrupted work at its original (time, seq) priority."},
    {"step", (PyCFunction)Scheduler_step, METH_NOARGS,
     "Execute the next callback; False when nothing is queued."},
    {"run", (PyCFunction)Scheduler_run, METH_VARARGS | METH_KEYWORDS,
     "Process queued callbacks in order."},
    {"run_to_quiescence", (PyCFunction)Scheduler_run_to_quiescence,
     METH_VARARGS | METH_KEYWORDS,
     "Run until no (non-periodic) work remains."},
    {"request_stop", (PyCFunction)Scheduler_request_stop, METH_NOARGS,
     "Halt run/run_to_quiescence before the next step."},
    {"clear_stop", (PyCFunction)Scheduler_clear_stop, METH_NOARGS,
     "Re-arm a scheduler halted by request_stop."},
    {"pending_nonperiodic", (PyCFunction)Scheduler_pending_nonperiodic,
     METH_NOARGS, "Queued, uncancelled, non-periodic callbacks (O(1))."},
    {"release_storage", (PyCFunction)Scheduler_release_storage,
     METH_NOARGS, "Hand the heap and queued entries back to the pool."},
    {"clear_queue", (PyCFunction)Scheduler_clear_queue, METH_NOARGS,
     "Drop every queued callback (end-of-life cycle breaking)."},
    {"_peek", (PyCFunction)Scheduler__peek, METH_NOARGS, NULL},
    {"_on_cancel", (PyCFunction)Scheduler__on_cancel, METH_O, NULL},
    {"_compact", (PyCFunction)Scheduler__compact, METH_NOARGS, NULL},
    {NULL}
};

static PyGetSetDef Scheduler_getset[] = {
    {"now", (getter)Scheduler_get_now, NULL, "Current virtual time.",
     NULL},
    {"processed", (getter)Scheduler_get_processed, NULL,
     "Number of callbacks executed so far.", NULL},
    {"pending", (getter)Scheduler_get_pending, NULL,
     "Number of queued, uncancelled callbacks (O(1)).", NULL},
    {"last_scheduled_seq", (getter)Scheduler_get_last_seq, NULL,
     "Sequence number of the most recently scheduled entry.", NULL},
    {"stop_requested", (getter)Scheduler_get_stop_requested, NULL,
     "Whether a mid-run halt has been requested.", NULL},
    {"_pool", (getter)Scheduler_get_pool, NULL, NULL, NULL},
    {NULL}
};

static PyMemberDef Scheduler_members[] = {
    {"_queue", T_OBJECT_EX, offsetof(SchedulerObject, queue), READONLY,
     NULL},
    {"_seq", T_LONGLONG, offsetof(SchedulerObject, seq), 0, NULL},
    {"_last_seq", T_LONGLONG, offsetof(SchedulerObject, last_seq), 0,
     NULL},
    {"_processed", T_LONGLONG, offsetof(SchedulerObject, processed), 0,
     NULL},
    {"_now", T_DOUBLE, offsetof(SchedulerObject, now), 0, NULL},
    {"_pending", T_PYSSIZET, offsetof(SchedulerObject, pending), 0, NULL},
    {"_pending_nonperiodic", T_PYSSIZET,
     offsetof(SchedulerObject, pending_nonperiodic), 0, NULL},
    {"_cancelled_in_heap", T_PYSSIZET,
     offsetof(SchedulerObject, cancelled_in_heap), 0, NULL},
    {"_stop_requested", T_BOOL,
     offsetof(SchedulerObject, stop_requested), 0, NULL},
    {NULL}
};

static PyTypeObject Scheduler_Type = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro._accel._ccore.Scheduler",
    .tp_basicsize = sizeof(SchedulerObject),
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC |
                Py_TPFLAGS_BASETYPE,
    .tp_new = PyType_GenericNew,
    .tp_init = (initproc)Scheduler_init,
    .tp_dealloc = (destructor)Scheduler_dealloc,
    .tp_traverse = (traverseproc)Scheduler_traverse,
    .tp_clear = (inquiry)Scheduler_clear_refs,
    .tp_methods = Scheduler_methods,
    .tp_getset = Scheduler_getset,
    .tp_members = Scheduler_members,
    .tp_doc = "A deterministic virtual-time event loop (compiled core).",
};

/* ------------------------------------------------------------------ */
/* _ChannelState                                                      */
/* ------------------------------------------------------------------ */

typedef struct {
    PyObject_HEAD
    double clock;        /* earliest time the next delivery may occur */
    PyObject *held;      /* list of (msg, kind) tuples */
    char blocked;
    long long sent;
    long long delivered;
    PyObject *burst;     /* pending _Burst or None */
} ChannelStateObject;

static PyTypeObject ChannelState_Type;

static int
ChannelState_init(ChannelStateObject *self, PyObject *args, PyObject *kwds)
{
    if ((args && PyTuple_GET_SIZE(args)) || (kwds && PyDict_GET_SIZE(kwds))) {
        PyErr_SetString(PyExc_TypeError,
                        "_ChannelState() takes no arguments");
        return -1;
    }
    self->clock = 0.0;
    PyObject *held = PyList_New(0);
    if (held == NULL)
        return -1;
    Py_XSETREF(self->held, held);
    self->blocked = 0;
    self->sent = 0;
    self->delivered = 0;
    Py_XSETREF(self->burst, Py_NewRef(Py_None));
    return 0;
}

static int
ChannelState_traverse(ChannelStateObject *self, visitproc visit, void *arg)
{
    Py_VISIT(self->held);
    Py_VISIT(self->burst);
    return 0;
}

static int
ChannelState_clear(ChannelStateObject *self)
{
    Py_CLEAR(self->held);
    Py_CLEAR(self->burst);
    return 0;
}

static void
ChannelState_dealloc(ChannelStateObject *self)
{
    PyObject_GC_UnTrack(self);
    ChannelState_clear(self);
    Py_TYPE(self)->tp_free((PyObject *)self);
}

static PyMemberDef ChannelState_members[] = {
    {"clock", T_DOUBLE, offsetof(ChannelStateObject, clock), 0, NULL},
    {"held", T_OBJECT_EX, offsetof(ChannelStateObject, held), 0, NULL},
    {"blocked", T_BOOL, offsetof(ChannelStateObject, blocked), 0, NULL},
    {"sent", T_LONGLONG, offsetof(ChannelStateObject, sent), 0, NULL},
    {"delivered", T_LONGLONG, offsetof(ChannelStateObject, delivered), 0,
     NULL},
    {"burst", T_OBJECT, offsetof(ChannelStateObject, burst), 0, NULL},
    {NULL}
};

static PyTypeObject ChannelState_Type = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro._accel._ccore._ChannelState",
    .tp_basicsize = sizeof(ChannelStateObject),
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC |
                Py_TPFLAGS_BASETYPE,
    .tp_new = PyType_GenericNew,
    .tp_init = (initproc)ChannelState_init,
    .tp_dealloc = (destructor)ChannelState_dealloc,
    .tp_traverse = (traverseproc)ChannelState_traverse,
    .tp_clear = (inquiry)ChannelState_clear,
    .tp_members = ChannelState_members,
    .tp_doc = "Per-channel bookkeeping (compiled core).",
};

/* ------------------------------------------------------------------ */
/* NetworkCore struct (needed by _Burst.fire)                         */
/* ------------------------------------------------------------------ */

typedef struct {
    PyObject_HEAD
    PyObject *scheduler;       /* SchedulerObject */
    Py_ssize_t n;
    PyObject *delay_model;
    PyObject *rng;
    PyObject *deliver_fn;      /* callable or None */
    char batch;
    PyObject *channels;        /* dict (src, dst) -> state */
    PyObject *flat;            /* list, src * n + dst -> state/None */
    PyObject *hold_predicates; /* list */
    long long sent_app, sent_protocol, sent_system;
    long long messages_delivered;
    long long delivery_entries;
    PyObject *targets;         /* list of processes or None */
    PyObject *burst_free;      /* list of retired _Burst */
    long long bursts_reused;
    /* Delay fast-path cache, keyed by (model, rng) identity. A frozen
     * dataclass cannot mutate its params, so identity implies params. */
    PyObject *cached_model;
    PyObject *cached_rng;
    PyObject *rng_random;      /* bound rng.random or NULL */
    int delay_kind;            /* index into kernels; -1 = generic */
    double p0, p1;
} NetworkCoreObject;

static PyTypeObject NetworkCore_Type;

/* ------------------------------------------------------------------ */
/* _Burst                                                             */
/* ------------------------------------------------------------------ */

#define BURST_FREE_MAX 4096

typedef struct {
    PyObject_HEAD
    PyObject *network;  /* NetworkCoreObject or None (retired) */
    PyObject *state;    /* ChannelStateObject or None */
    long long src, dst;
    PyObject *msg;      /* Message or None */
    PyObject *kind;     /* str */
    PyObject *queue;    /* overflow list of (msg, kind) or None */
    Py_ssize_t qhead;   /* popleft position into queue */
    double due;
    char periodic;
    long long seq;
} BurstObject;

static PyTypeObject Burst_Type;

#define Burst_CheckExact(op) Py_IS_TYPE((op), &Burst_Type)

static int
Burst_init(BurstObject *self, PyObject *args, PyObject *kwds)
{
    static char *kwlist[] = {"network", "state", "src", "dst", "msg",
                             "kind", "due", "periodic", NULL};
    PyObject *network, *state, *msg, *kind;
    long long src, dst;
    double due;
    int periodic;
    if (!PyArg_ParseTupleAndKeywords(args, kwds, "OOLLOOdp", kwlist,
                                     &network, &state, &src, &dst, &msg,
                                     &kind, &due, &periodic))
        return -1;
    Py_XSETREF(self->network, Py_NewRef(network));
    Py_XSETREF(self->state, Py_NewRef(state));
    self->src = src;
    self->dst = dst;
    Py_XSETREF(self->msg, Py_NewRef(msg));
    Py_XSETREF(self->kind, Py_NewRef(kind));
    Py_CLEAR(self->queue);
    self->qhead = 0;
    self->due = due;
    self->periodic = (char)periodic;
    self->seq = -1;  /* filled right after the entry is scheduled */
    return 0;
}

static int
Burst_traverse(BurstObject *self, visitproc visit, void *arg)
{
    Py_VISIT(self->network);
    Py_VISIT(self->state);
    Py_VISIT(self->msg);
    Py_VISIT(self->kind);
    Py_VISIT(self->queue);
    return 0;
}

static int
Burst_clear(BurstObject *self)
{
    Py_CLEAR(self->network);
    Py_CLEAR(self->state);
    Py_CLEAR(self->msg);
    Py_CLEAR(self->kind);
    Py_CLEAR(self->queue);
    return 0;
}

static void
Burst_dealloc(BurstObject *self)
{
    PyObject_GC_UnTrack(self);
    Burst_clear(self);
    Py_TYPE(self)->tp_free((PyObject *)self);
}

/* Drain the burst in send order — the scheduled callback (tp_call). */
static PyObject *
burst_fire(BurstObject *self)
{
    /* Detach from channel state before draining (never rejoined). */
    ChannelStateObject *state = (ChannelStateObject *)self->state;
    if (state != NULL && (PyObject *)state != Py_None &&
        state->burst == (PyObject *)self)
        Py_SETREF(state->burst, Py_NewRef(Py_None));
    NetworkCoreObject *network = (NetworkCoreObject *)self->network;
    if (network == NULL || (PyObject *)network == Py_None) {
        PyErr_SetString(ERR(), "retired delivery burst fired");
        return NULL;
    }
    long long src = self->src;
    PyObject *src_obj = PyLong_FromLongLong(src);
    if (src_obj == NULL)
        return NULL;
    PyObject *deliver = NULL;   /* bound targets[dst].deliver */
    PyObject *deliver_fn = NULL;
    PyObject *dst_obj = NULL;
    if (network->targets != NULL && network->targets != Py_None) {
        PyObject *proc = PySequence_GetItem(network->targets,
                                            (Py_ssize_t)self->dst);
        if (proc == NULL)
            goto error;
        deliver = PyObject_GetAttr(proc, s_deliver);
        Py_DECREF(proc);
        if (deliver == NULL)
            goto error;
    }
    else {
        deliver_fn = network->deliver_fn;
        if (deliver_fn == NULL || deliver_fn == Py_None) {
            PyErr_SetString(ERR(),
                            "network has no delivery callback installed");
            goto error;
        }
        Py_INCREF(deliver_fn);
        dst_obj = PyLong_FromLongLong(self->dst);
        if (dst_obj == NULL)
            goto error;
    }
    /* First message delivered unconditionally (progress before any stop
     * check, matching the per-message path). */
    {
        state->delivered += 1;
        network->messages_delivered += 1;
        PyObject *res;
        if (deliver != NULL)
            res = PyObject_CallFunctionObjArgs(
                deliver, src_obj, self->msg, self->kind, NULL);
        else
            res = PyObject_CallFunctionObjArgs(
                deliver_fn, src_obj, dst_obj, self->msg, self->kind, NULL);
        if (res == NULL)
            goto error;
        Py_DECREF(res);
    }
    PyObject *queue = self->queue;
    if (queue != NULL && self->qhead < PyList_GET_SIZE(queue)) {
        SchedulerObject *scheduler = (SchedulerObject *)network->scheduler;
        while (self->qhead < PyList_GET_SIZE(queue)) {
            if (scheduler->stop_requested) {
                /* Requeue the remainder at the burst entry's own
                 * (time, seq) priority — see the pure fire(). */
                PyObject *pair = PyList_GET_ITEM(queue, self->qhead);
                self->qhead += 1;
                Py_XSETREF(self->msg,
                           Py_NewRef(PyTuple_GET_ITEM(pair, 0)));
                Py_XSETREF(self->kind,
                           Py_NewRef(PyTuple_GET_ITEM(pair, 1)));
                network->delivery_entries += 1;
                if (scheduler_resched_c(scheduler, self->due, self->seq,
                                        (PyObject *)self,
                                        self->periodic) < 0)
                    goto error;
                Py_XDECREF(deliver);
                Py_XDECREF(deliver_fn);
                Py_XDECREF(dst_obj);
                Py_DECREF(src_obj);
                Py_RETURN_NONE;
            }
            PyObject *pair = PyList_GET_ITEM(queue, self->qhead);
            self->qhead += 1;
            PyObject *bmsg = Py_NewRef(PyTuple_GET_ITEM(pair, 0));
            PyObject *bkind = Py_NewRef(PyTuple_GET_ITEM(pair, 1));
            state->delivered += 1;
            network->messages_delivered += 1;
            PyObject *res;
            if (deliver != NULL)
                res = PyObject_CallFunctionObjArgs(
                    deliver, src_obj, bmsg, bkind, NULL);
            else
                res = PyObject_CallFunctionObjArgs(
                    deliver_fn, src_obj, dst_obj, bmsg, bkind, NULL);
            Py_DECREF(bmsg);
            Py_DECREF(bkind);
            if (res == NULL)
                goto error;
            Py_DECREF(res);
        }
    }
    Py_XDECREF(deliver);
    Py_XDECREF(deliver_fn);
    Py_XDECREF(dst_obj);
    Py_DECREF(src_obj);
    /* Fully drained: empty the overflow queue and retire to the
     * network's free list, clearing world references first. */
    if (queue != NULL) {
        if (PyList_SetSlice(queue, 0, PyList_GET_SIZE(queue), NULL) < 0)
            return NULL;
        self->qhead = 0;
    }
    PyObject *free_list = network->burst_free;
    if (free_list != NULL && PyList_CheckExact(free_list) &&
        PyList_GET_SIZE(free_list) < BURST_FREE_MAX) {
        Py_XSETREF(self->network, Py_NewRef(Py_None));
        Py_XSETREF(self->state, Py_NewRef(Py_None));
        Py_XSETREF(self->msg, Py_NewRef(Py_None));
        if (PyList_Append(free_list, (PyObject *)self) < 0)
            return NULL;
    }
    Py_RETURN_NONE;
error:
    Py_XDECREF(deliver);
    Py_XDECREF(deliver_fn);
    Py_XDECREF(dst_obj);
    Py_DECREF(src_obj);
    return NULL;
}

static PyObject *
Burst_call(BurstObject *self, PyObject *args, PyObject *kwds)
{
    if ((args && PyTuple_GET_SIZE(args)) || (kwds && PyDict_GET_SIZE(kwds))) {
        PyErr_SetString(PyExc_TypeError, "_Burst.fire() takes no arguments");
        return NULL;
    }
    return burst_fire(self);
}

static PyObject *
Burst_fire_method(BurstObject *self, PyObject *noarg)
{
    return burst_fire(self);
}

static PyMethodDef Burst_methods[] = {
    {"fire", (PyCFunction)Burst_fire_method, METH_NOARGS,
     "Drain the burst in send order (the scheduled callback)."},
    {NULL}
};

static PyMemberDef Burst_members[] = {
    {"network", T_OBJECT, offsetof(BurstObject, network), 0, NULL},
    {"state", T_OBJECT, offsetof(BurstObject, state), 0, NULL},
    {"src", T_LONGLONG, offsetof(BurstObject, src), 0, NULL},
    {"dst", T_LONGLONG, offsetof(BurstObject, dst), 0, NULL},
    {"msg", T_OBJECT, offsetof(BurstObject, msg), 0, NULL},
    {"kind", T_OBJECT, offsetof(BurstObject, kind), 0, NULL},
    {"queue", T_OBJECT, offsetof(BurstObject, queue), 0, NULL},
    {"due", T_DOUBLE, offsetof(BurstObject, due), 0, NULL},
    {"periodic", T_BOOL, offsetof(BurstObject, periodic), 0, NULL},
    {"seq", T_LONGLONG, offsetof(BurstObject, seq), 0, NULL},
    {NULL}
};

static PyTypeObject Burst_Type = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro._accel._ccore._Burst",
    .tp_basicsize = sizeof(BurstObject),
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC |
                Py_TPFLAGS_BASETYPE,
    .tp_new = PyType_GenericNew,
    .tp_init = (initproc)Burst_init,
    .tp_dealloc = (destructor)Burst_dealloc,
    .tp_traverse = (traverseproc)Burst_traverse,
    .tp_clear = (inquiry)Burst_clear,
    .tp_call = (ternaryfunc)Burst_call,
    .tp_methods = Burst_methods,
    .tp_members = Burst_members,
    .tp_doc = "One scheduled delivery entry and the messages on it.",
};

/* ------------------------------------------------------------------ */
/* NetworkCore                                                        */
/* ------------------------------------------------------------------ */

/* Delay-model attribute names for the fast-path parameter cache. */
static PyObject *s_param_delay;
static PyObject *s_param_low;
static PyObject *s_param_high;
static PyObject *s_param_mean;
static PyObject *s_param_median;
static PyObject *s_param_sigma;
static PyObject *s_param_scale;
static PyObject *s_param_alpha;

static int
py_str_eq(PyObject *a, PyObject *b)
{
    if (a == b)
        return 1;
    if (PyUnicode_Check(a) && PyUnicode_Check(b))
        return PyUnicode_Compare(a, b) == 0 && !PyErr_Occurred();
    return 0;
}

/* 0=app, 1=protocol, 2=system, -1=unknown. */
static int
kind_index(PyObject *kind)
{
    if (kind == s_app)
        return 0;
    if (kind == s_protocol)
        return 1;
    if (kind == s_system)
        return 2;
    if (py_str_eq(kind, s_app))
        return 0;
    if (py_str_eq(kind, s_protocol))
        return 1;
    if (py_str_eq(kind, s_system))
        return 2;
    return -1;
}

static int
get_attr_double(PyObject *obj, PyObject *name, double *out)
{
    PyObject *v = PyObject_GetAttr(obj, name);
    if (v == NULL)
        return -1;
    double d = PyFloat_AsDouble(v);
    Py_DECREF(v);
    if (d == -1.0 && PyErr_Occurred())
        return -1;
    *out = d;
    return 0;
}

/* Re-derive the sampling fast path after a (model, rng) identity change.
 * Leaves delay_kind at -1 (generic .sample() dispatch) whenever the
 * model type is unregistered, the rng is not exactly random.Random, or a
 * parameter would make the pure code raise (the generic path must be the
 * one to raise, with the pure traceback). */
static int
network_rebuild_delay_cache(NetworkCoreObject *self)
{
    Py_XSETREF(self->cached_model, Py_NewRef(self->delay_model));
    Py_XSETREF(self->cached_rng, Py_NewRef(self->rng));
    Py_CLEAR(self->rng_random);
    self->delay_kind = -1;
    if (g_random_type == NULL || !Py_IS_TYPE(self->rng, g_random_type))
        return 0;
    PyTypeObject *mt = Py_TYPE(self->delay_model);
    int kind = -1;
    for (int i = 0; i < 5; i++) {
        if (g_delay_types[i] == mt) {
            kind = i;
            break;
        }
    }
    if (kind < 0)
        return 0;
    double p0 = 0.0, p1 = 0.0, tmp;
    switch (kind) {
    case 0:
        if (get_attr_double(self->delay_model, s_param_delay, &p0) < 0)
            return -1;
        break;
    case 1:
        if (get_attr_double(self->delay_model, s_param_low, &p0) < 0 ||
            get_attr_double(self->delay_model, s_param_high, &p1) < 0)
            return -1;
        break;
    case 2:
        if (get_attr_double(self->delay_model, s_param_mean, &tmp) < 0)
            return -1;
        if (tmp == 0.0)
            return 0;  /* pure raises ZeroDivisionError */
        p0 = 1.0 / tmp;
        break;
    case 3:
        if (get_attr_double(self->delay_model, s_param_median, &tmp) < 0 ||
            get_attr_double(self->delay_model, s_param_sigma, &p1) < 0)
            return -1;
        if (tmp <= 0.0)
            return 0;  /* pure raises math domain error */
        p0 = log(tmp);
        break;
    case 4:
        if (get_attr_double(self->delay_model, s_param_scale, &p0) < 0 ||
            get_attr_double(self->delay_model, s_param_alpha, &tmp) < 0)
            return -1;
        if (tmp == 0.0)
            return 0;  /* pure raises ZeroDivisionError */
        p1 = -1.0 / tmp;
        break;
    }
    PyObject *rr = PyObject_GetAttr(self->rng, s_random);
    if (rr == NULL)
        return -1;
    self->rng_random = rr;
    self->p0 = p0;
    self->p1 = p1;
    self->delay_kind = kind;
    return 0;
}

/* One delay sample via the compiled kernels, consuming rng.random()
 * exactly as the CPython 3.11 random.Random methods do so the stream
 * stays bit-identical. Returns 0 (sampled), 1 (use generic path), or
 * -1 (error set). */
static int
network_sample_fast(NetworkCoreObject *self, double *out)
{
    if (self->delay_model != self->cached_model ||
        self->rng != self->cached_rng) {
        if (network_rebuild_delay_cache(self) < 0)
            return -1;
    }
    int kind = self->delay_kind;
    if (kind < 0)
        return 1;
    if (kind == 0) {
        *out = self->p0;  /* ConstantDelay consumes no randomness */
        return 0;
    }
#define NEXT_RANDOM(var)                                        \
    do {                                                        \
        PyObject *r_ = PyObject_CallNoArgs(self->rng_random);   \
        if (r_ == NULL)                                         \
            return -1;                                          \
        (var) = PyFloat_AsDouble(r_);                           \
        Py_DECREF(r_);                                          \
        if ((var) == -1.0 && PyErr_Occurred())                  \
            return -1;                                          \
    } while (0)
    double u;
    switch (kind) {
    case 1:  /* uniform(low, high) = low + (high-low)*random() */
        NEXT_RANDOM(u);
        *out = self->p0 + (self->p1 - self->p0) * u;
        return 0;
    case 2:  /* expovariate(lambd) = -log(1-random())/lambd */
        NEXT_RANDOM(u);
        *out = -log(1.0 - u) / self->p0;
        return 0;
    case 3: {  /* lognormvariate = exp(normalvariate(mu, sigma)) */
        double z, u1, u2;
        for (;;) {  /* Kinderman & Monahan, as in CPython */
            NEXT_RANDOM(u1);
            NEXT_RANDOM(u2);
            u2 = 1.0 - u2;
            z = g_nv_magic * (u1 - 0.5) / u2;
            if (z * z / 4.0 <= -log(u2))
                break;
        }
        *out = exp(self->p0 + z * self->p1);
        return 0;
    }
    case 4:  /* scale * paretovariate(alpha); p1 = -1/alpha */
        NEXT_RANDOM(u);
        u = 1.0 - u;
        *out = self->p0 * pow(u, self->p1);
        return 0;
    }
    return 1;  /* unreachable */
}

static int
NetworkCore_init(NetworkCoreObject *self, PyObject *args, PyObject *kwds)
{
    static char *kwlist[] = {"scheduler", "n", "delay_model", "rng",
                             "deliver", "batch", NULL};
    PyObject *scheduler, *delay_model, *rng, *deliver;
    Py_ssize_t n;
    int batch;
    if (!error_installed())
        return -1;
    if (!PyArg_ParseTupleAndKeywords(args, kwds, "OnOOOp", kwlist,
                                     &scheduler, &n, &delay_model, &rng,
                                     &deliver, &batch))
        return -1;
    if (!Scheduler_Check(scheduler)) {
        PyErr_SetString(PyExc_TypeError,
                        "NetworkCore requires a compiled Scheduler");
        return -1;
    }
    Py_XSETREF(self->scheduler, Py_NewRef(scheduler));
    self->n = n;
    Py_XSETREF(self->delay_model, Py_NewRef(delay_model));
    Py_XSETREF(self->rng, Py_NewRef(rng));
    Py_XSETREF(self->deliver_fn, Py_NewRef(deliver));
    self->batch = (char)batch;
    PyObject *channels = PyDict_New();
    if (channels == NULL)
        return -1;
    Py_XSETREF(self->channels, channels);
    PyObject *flat = PyList_New(n * n);
    if (flat == NULL)
        return -1;
    for (Py_ssize_t i = 0; i < n * n; i++)
        PyList_SET_ITEM(flat, i, Py_NewRef(Py_None));
    Py_XSETREF(self->flat, flat);
    PyObject *preds = PyList_New(0);
    if (preds == NULL)
        return -1;
    Py_XSETREF(self->hold_predicates, preds);
    self->sent_app = self->sent_protocol = self->sent_system = 0;
    self->messages_delivered = 0;
    self->delivery_entries = 0;
    Py_XSETREF(self->targets, Py_NewRef(Py_None));
    SchedulerObject *sched = (SchedulerObject *)scheduler;
    PyObject *burst_free;
    if (sched->pool != NULL) {
        burst_free = PyObject_CallMethodObjArgs(sched->pool,
                                                s_adopt_bursts, NULL);
        if (burst_free == NULL)
            return -1;
        if (!PyList_CheckExact(burst_free)) {
            Py_DECREF(burst_free);
            PyErr_SetString(PyExc_TypeError,
                            "pool.adopt_bursts() must return a list");
            return -1;
        }
    }
    else {
        burst_free = PyList_New(0);
        if (burst_free == NULL)
            return -1;
    }
    Py_XSETREF(self->burst_free, burst_free);
    self->bursts_reused = 0;
    Py_CLEAR(self->cached_model);
    Py_CLEAR(self->cached_rng);
    Py_CLEAR(self->rng_random);
    self->delay_kind = -1;
    return 0;
}

static int
NetworkCore_traverse(NetworkCoreObject *self, visitproc visit, void *arg)
{
    Py_VISIT(self->scheduler);
    Py_VISIT(self->delay_model);
    Py_VISIT(self->rng);
    Py_VISIT(self->deliver_fn);
    Py_VISIT(self->channels);
    Py_VISIT(self->flat);
    Py_VISIT(self->hold_predicates);
    Py_VISIT(self->targets);
    Py_VISIT(self->burst_free);
    Py_VISIT(self->cached_model);
    Py_VISIT(self->cached_rng);
    Py_VISIT(self->rng_random);
    return 0;
}

static int
NetworkCore_clear(NetworkCoreObject *self)
{
    Py_CLEAR(self->scheduler);
    Py_CLEAR(self->delay_model);
    Py_CLEAR(self->rng);
    Py_CLEAR(self->deliver_fn);
    Py_CLEAR(self->channels);
    Py_CLEAR(self->flat);
    Py_CLEAR(self->hold_predicates);
    Py_CLEAR(self->targets);
    Py_CLEAR(self->burst_free);
    Py_CLEAR(self->cached_model);
    Py_CLEAR(self->cached_rng);
    Py_CLEAR(self->rng_random);
    return 0;
}

static void
NetworkCore_dealloc(NetworkCoreObject *self)
{
    PyObject_GC_UnTrack(self);
    NetworkCore_clear(self);
    Py_TYPE(self)->tp_free((PyObject *)self);
}

/* _state(src, dst): fetch-or-create, mirroring the pure inline form. */
static ChannelStateObject *
network_state(NetworkCoreObject *self, Py_ssize_t src, Py_ssize_t dst)
{
    Py_ssize_t idx = src * self->n + dst;
    PyObject *state = PyList_GET_ITEM(self->flat, idx);  /* borrowed */
    if (state != Py_None)
        return (ChannelStateObject *)state;
    ChannelStateObject *fresh = (ChannelStateObject *)
        ChannelState_Type.tp_alloc(&ChannelState_Type, 0);
    if (fresh == NULL)
        return NULL;
    fresh->clock = 0.0;
    fresh->held = PyList_New(0);
    if (fresh->held == NULL) {
        Py_DECREF(fresh);
        return NULL;
    }
    fresh->blocked = 0;
    fresh->sent = 0;
    fresh->delivered = 0;
    fresh->burst = Py_NewRef(Py_None);
    PyObject *key = Py_BuildValue("(nn)", src, dst);
    if (key == NULL) {
        Py_DECREF(fresh);
        return NULL;
    }
    int r = PyDict_SetItem(self->channels, key, (PyObject *)fresh);
    Py_DECREF(key);
    if (r < 0) {
        Py_DECREF(fresh);
        return NULL;
    }
    Py_INCREF(fresh);
    PyList_SetItem(self->flat, idx, (PyObject *)fresh);  /* steals */
    Py_DECREF(fresh);  /* flat + channels keep it alive: return borrowed */
    return fresh;
}

static int
network_matches_hold(NetworkCoreObject *self, Py_ssize_t src,
                     Py_ssize_t dst, PyObject *msg)
{
    PyObject *src_obj = PyLong_FromSsize_t(src);
    PyObject *dst_obj = src_obj ? PyLong_FromSsize_t(dst) : NULL;
    if (dst_obj == NULL) {
        Py_XDECREF(src_obj);
        return -1;
    }
    int hit = 0;
    PyObject *preds = self->hold_predicates;
    for (Py_ssize_t i = 0; i < PyList_GET_SIZE(preds); i++) {
        PyObject *pred = PyList_GET_ITEM(preds, i);
        PyObject *res = PyObject_CallFunctionObjArgs(
            pred, src_obj, dst_obj, msg, NULL);
        if (res == NULL) {
            hit = -1;
            break;
        }
        int truth = PyObject_IsTrue(res);
        Py_DECREF(res);
        if (truth < 0) {
            hit = -1;
            break;
        }
        if (truth) {
            hit = 1;
            break;
        }
    }
    Py_DECREF(src_obj);
    Py_DECREF(dst_obj);
    return hit;
}

/* Open a fresh delivery entry (burst or single) at `due`.
 * Mirrors Network._open_delivery, including the inlined scheduler push
 * with the past-time guard dropped (due >= now by construction). */
static int
network_open_delivery(NetworkCoreObject *self, ChannelStateObject *state,
                      Py_ssize_t src, Py_ssize_t dst, PyObject *msg,
                      PyObject *kind, double due, int periodic)
{
    SchedulerObject *sched = (SchedulerObject *)self->scheduler;
    if (self->batch) {
        BurstObject *burst = NULL;
        PyObject *free_list = self->burst_free;
        if (free_list != NULL && PyList_CheckExact(free_list) &&
            PyList_GET_SIZE(free_list) > 0) {
            Py_ssize_t k = PyList_GET_SIZE(free_list) - 1;
            PyObject *item = PyList_GET_ITEM(free_list, k);
            if (Burst_CheckExact(item)) {
                /* Reinitialise a retired burst (queue already drained). */
                Py_INCREF(item);
                if (PyList_SetSlice(free_list, k, k + 1, NULL) < 0) {
                    Py_DECREF(item);
                    return -1;
                }
                self->bursts_reused += 1;
                burst = (BurstObject *)item;
                Py_XSETREF(burst->network, Py_NewRef((PyObject *)self));
                Py_XSETREF(burst->state, Py_NewRef((PyObject *)state));
                burst->src = src;
                burst->dst = dst;
                Py_XSETREF(burst->msg, Py_NewRef(msg));
                Py_XSETREF(burst->kind, Py_NewRef(kind));
                burst->qhead = 0;
                burst->due = due;
                burst->periodic = (char)periodic;
            }
        }
        if (burst == NULL) {
            burst = (BurstObject *)Burst_Type.tp_alloc(&Burst_Type, 0);
            if (burst == NULL)
                return -1;
            burst->network = Py_NewRef((PyObject *)self);
            burst->state = Py_NewRef((PyObject *)state);
            burst->src = src;
            burst->dst = dst;
            burst->msg = Py_NewRef(msg);
            burst->kind = Py_NewRef(kind);
            burst->queue = NULL;
            burst->qhead = 0;
            burst->due = due;
            burst->periodic = (char)periodic;
        }
        Py_XSETREF(state->burst, Py_NewRef((PyObject *)burst));
        self->delivery_entries += 1;
        long long seq = sched->seq;
        sched->seq = seq + 1;
        sched->last_seq = seq;
        burst->seq = seq;
        /* The burst object is the callback: it is callable (tp_call ->
         * fire), saving the bound-method allocation per entry. */
        EntryObject *entry = scheduler_new_entry(
            sched, due, seq, (PyObject *)burst, periodic, 0);
        if (entry == NULL) {
            Py_DECREF(burst);
            return -1;
        }
        int r = heap_push(sched->queue, (PyObject *)entry);
        Py_DECREF(entry);
        Py_DECREF(burst);
        if (r < 0)
            return -1;
        sched->pending += 1;
        if (!periodic)
            sched->pending_nonperiodic += 1;
        return 0;
    }
    /* Unbatched: delegate to the Python-level hook on the Network
     * subclass, which builds the per-message closure and books it via
     * schedule_callback_at (cold path by construction). */
    PyObject *src_obj = PyLong_FromSsize_t(src);
    PyObject *dst_obj = src_obj ? PyLong_FromSsize_t(dst) : NULL;
    PyObject *due_obj = dst_obj ? PyFloat_FromDouble(due) : NULL;
    if (due_obj == NULL) {
        Py_XDECREF(src_obj);
        Py_XDECREF(dst_obj);
        return -1;
    }
    PyObject *res = PyObject_CallMethodObjArgs(
        (PyObject *)self, s_open_unbatched, (PyObject *)state,
        src_obj, dst_obj, msg, kind, due_obj,
        periodic ? Py_True : Py_False, NULL);
    Py_DECREF(src_obj);
    Py_DECREF(dst_obj);
    Py_DECREF(due_obj);
    if (res == NULL)
        return -1;
    Py_DECREF(res);
    return 0;
}

/* Shared tail of send/_schedule_delivery: clamp the due time to the
 * FIFO channel clock, then join the channel's pending burst when
 * provably order-preserving (same due, same periodic class, burst entry
 * still the scheduler's most recent) or open a fresh delivery. */
static int
network_queue_delivery(NetworkCoreObject *self, ChannelStateObject *state,
                       Py_ssize_t src, Py_ssize_t dst, PyObject *msg,
                       PyObject *kind, double delay, int periodic)
{
    SchedulerObject *sched = (SchedulerObject *)self->scheduler;
    double due = sched->now + delay;
    if (state->clock > due)
        due = state->clock;
    state->clock = due;
    PyObject *b = state->burst;
    if (self->batch && b != NULL && b != Py_None && Burst_CheckExact(b)) {
        BurstObject *burst = (BurstObject *)b;
        if (burst->due == due && burst->periodic == (char)periodic &&
            burst->seq == sched->last_seq) {
            PyObject *pair = PyTuple_Pack(2, msg, kind);
            if (pair == NULL)
                return -1;
            if (burst->queue == NULL) {
                burst->queue = PyList_New(0);
                if (burst->queue == NULL) {
                    Py_DECREF(pair);
                    return -1;
                }
            }
            int r = PyList_Append(burst->queue, pair);
            Py_DECREF(pair);
            return r;
        }
    }
    return network_open_delivery(self, state, src, dst, msg, kind, due,
                                 periodic);
}

static PyObject *
NetworkCore_send(NetworkCoreObject *self, PyObject *args, PyObject *kwds)
{
    static char *kwlist[] = {"src", "dst", "msg", "kind", NULL};
    Py_ssize_t src, dst;
    PyObject *msg, *kind = NULL;
    if (!PyArg_ParseTupleAndKeywords(args, kwds, "nnO|O", kwlist,
                                     &src, &dst, &msg, &kind))
        return NULL;
    if (kind == NULL)
        kind = s_app;
    if (src < 0 || src >= self->n || dst < 0 || dst >= self->n)
        return PyErr_Format(ERR(), "send outside process universe: %zd->%zd",
                            src, dst);
    if (self->deliver_fn == NULL || self->deliver_fn == Py_None) {
        PyErr_SetString(ERR(), "network has no delivery callback installed");
        return NULL;
    }
    int kind_idx = kind_index(kind);
    if (kind_idx < 0)
        return PyErr_Format(ERR(), "unknown message kind %R", kind);
    ChannelStateObject *state = network_state(self, src, dst);
    if (state == NULL)
        return NULL;
    state->sent += 1;
    switch (kind_idx) {
    case 0: self->sent_app += 1; break;
    case 1: self->sent_protocol += 1; break;
    default: self->sent_system += 1; break;
    }
    int held = state->blocked;
    if (!held && self->hold_predicates != NULL &&
        PyList_GET_SIZE(self->hold_predicates) > 0) {
        held = network_matches_hold(self, src, dst, msg);
        if (held < 0)
            return NULL;
    }
    if (held) {
        state->blocked = 1;
        PyObject *pair = PyTuple_Pack(2, msg, kind);
        if (pair == NULL)
            return NULL;
        if (!PyList_Check(state->held)) {
            Py_DECREF(pair);
            PyErr_SetString(PyExc_TypeError, "channel held queue not a list");
            return NULL;
        }
        int r = PyList_Append(state->held, pair);
        Py_DECREF(pair);
        if (r < 0)
            return NULL;
        Py_RETURN_NONE;
    }
    double delay;
    int st = network_sample_fast(self, &delay);
    if (st < 0)
        return NULL;
    if (st == 1) {
        /* Generic dispatch through DelayModel.sample — also the path
         * that reproduces the pure tracebacks for bad parameters. */
        PyObject *src_obj = PyLong_FromSsize_t(src);
        PyObject *dst_obj = src_obj ? PyLong_FromSsize_t(dst) : NULL;
        if (dst_obj == NULL) {
            Py_XDECREF(src_obj);
            return NULL;
        }
        PyObject *sample = PyObject_GetAttr(self->delay_model, s_sample);
        PyObject *delay_obj = NULL;
        if (sample != NULL) {
            delay_obj = PyObject_CallFunctionObjArgs(
                sample, self->rng, src_obj, dst_obj, NULL);
            Py_DECREF(sample);
        }
        Py_DECREF(src_obj);
        Py_DECREF(dst_obj);
        if (delay_obj == NULL)
            return NULL;
        delay = PyFloat_AsDouble(delay_obj);
        if (delay == -1.0 && PyErr_Occurred()) {
            Py_DECREF(delay_obj);
            return NULL;
        }
        if (delay < 0) {
            PyErr_Format(ERR(), "delay model produced negative delay %S",
                         delay_obj);
            Py_DECREF(delay_obj);
            return NULL;
        }
        Py_DECREF(delay_obj);
    }
    else if (delay < 0) {
        PyObject *delay_obj = PyFloat_FromDouble(delay);
        if (delay_obj == NULL)
            return NULL;
        PyErr_Format(ERR(), "delay model produced negative delay %S",
                     delay_obj);
        Py_DECREF(delay_obj);
        return NULL;
    }
    if (network_queue_delivery(self, state, src, dst, msg, kind, delay,
                               kind_idx == 2) < 0)
        return NULL;
    Py_RETURN_NONE;
}

static PyObject *
NetworkCore__schedule_delivery(NetworkCoreObject *self, PyObject *args,
                               PyObject *kwds)
{
    static char *kwlist[] = {"state", "src", "dst", "msg", "kind",
                             "delay", NULL};
    PyObject *state_obj, *msg, *kind, *delay_obj;
    Py_ssize_t src, dst;
    if (!PyArg_ParseTupleAndKeywords(args, kwds, "OnnOOO", kwlist,
                                     &state_obj, &src, &dst, &msg, &kind,
                                     &delay_obj))
        return NULL;
    if (!PyObject_TypeCheck(state_obj, &ChannelState_Type)) {
        PyErr_SetString(PyExc_TypeError,
                        "_schedule_delivery needs a _ChannelState");
        return NULL;
    }
    double delay = PyFloat_AsDouble(delay_obj);
    if (delay == -1.0 && PyErr_Occurred())
        return NULL;
    if (delay < 0)
        return PyErr_Format(ERR(), "delay model produced negative delay %S",
                            delay_obj);
    if (network_queue_delivery(self, (ChannelStateObject *)state_obj, src,
                               dst, msg, kind, delay,
                               kind_index(kind) == 2) < 0)
        return NULL;
    Py_RETURN_NONE;
}

static PyObject *
NetworkCore__state(NetworkCoreObject *self, PyObject *args)
{
    Py_ssize_t src, dst;
    if (!PyArg_ParseTuple(args, "nn", &src, &dst))
        return NULL;
    ChannelStateObject *state = network_state(self, src, dst);
    if (state == NULL)
        return NULL;
    return Py_NewRef((PyObject *)state);
}

static PyObject *
NetworkCore_set_deliver(NetworkCoreObject *self, PyObject *deliver)
{
    Py_XSETREF(self->deliver_fn, Py_NewRef(deliver));
    Py_RETURN_NONE;
}

static PyObject *
NetworkCore_set_delivery_table(NetworkCoreObject *self, PyObject *processes)
{
    Py_XSETREF(self->targets, Py_NewRef(processes));
    Py_RETURN_NONE;
}

static PyObject *
NetworkCore_get_sent_by_kind(NetworkCoreObject *self, void *closure)
{
    return Py_BuildValue("{OLOLOL}", s_app, self->sent_app, s_protocol,
                         self->sent_protocol, s_system, self->sent_system);
}

static PyObject *
NetworkCore_get_n(NetworkCoreObject *self, void *closure)
{
    return PyLong_FromSsize_t(self->n);
}

static PyObject *
NetworkCore_get_app_sent(NetworkCoreObject *self, void *closure)
{
    return PyLong_FromLongLong(self->sent_app);
}

static PyObject *
NetworkCore_get_protocol_sent(NetworkCoreObject *self, void *closure)
{
    return PyLong_FromLongLong(self->sent_protocol);
}

static PyObject *
NetworkCore_get_system_sent(NetworkCoreObject *self, void *closure)
{
    return PyLong_FromLongLong(self->sent_system);
}

static PyMethodDef NetworkCore_methods[] = {
    {"send", (PyCFunction)NetworkCore_send,
     METH_VARARGS | METH_KEYWORDS,
     "Accept a message for eventual FIFO delivery on C_{src,dst}."},
    {"_schedule_delivery", (PyCFunction)NetworkCore__schedule_delivery,
     METH_VARARGS | METH_KEYWORDS,
     "Queue one delivery with a caller-supplied (batch-sampled) delay."},
    {"_state", (PyCFunction)NetworkCore__state, METH_VARARGS,
     "Fetch-or-create the channel state for (src, dst)."},
    {"set_deliver", (PyCFunction)NetworkCore_set_deliver, METH_O,
     "Install the delivery callback (done by the World during wiring)."},
    {"set_delivery_table", (PyCFunction)NetworkCore_set_delivery_table,
     METH_O, "Install direct per-process delivery for the hot path."},
    {NULL}
};

static PyGetSetDef NetworkCore_getsets[] = {
    {"sent_by_kind", (getter)NetworkCore_get_sent_by_kind, NULL,
     "Per-kind accepted-message counters (fresh dict per access).", NULL},
    {"n", (getter)NetworkCore_get_n, NULL, "Number of processes.", NULL},
    {"app_messages_sent", (getter)NetworkCore_get_app_sent, NULL,
     "Application (modelled) messages accepted so far.", NULL},
    {"protocol_messages_sent", (getter)NetworkCore_get_protocol_sent, NULL,
     "Failure-detection protocol messages accepted so far.", NULL},
    {"system_messages_sent", (getter)NetworkCore_get_system_sent, NULL,
     "Heartbeat/system messages accepted so far.", NULL},
    {NULL}
};

static PyMemberDef NetworkCore_members[] = {
    {"_scheduler", T_OBJECT_EX, offsetof(NetworkCoreObject, scheduler),
     READONLY, NULL},
    {"_n", T_PYSSIZET, offsetof(NetworkCoreObject, n), READONLY, NULL},
    {"_delay_model", T_OBJECT_EX, offsetof(NetworkCoreObject, delay_model),
     0, NULL},
    {"_rng", T_OBJECT_EX, offsetof(NetworkCoreObject, rng), 0, NULL},
    {"_deliver_fn", T_OBJECT, offsetof(NetworkCoreObject, deliver_fn), 0,
     NULL},
    {"_batch", T_BOOL, offsetof(NetworkCoreObject, batch), 0, NULL},
    {"_channels", T_OBJECT_EX, offsetof(NetworkCoreObject, channels),
     READONLY, NULL},
    {"_flat", T_OBJECT_EX, offsetof(NetworkCoreObject, flat), READONLY,
     NULL},
    {"_hold_predicates", T_OBJECT_EX,
     offsetof(NetworkCoreObject, hold_predicates), READONLY, NULL},
    {"_targets", T_OBJECT, offsetof(NetworkCoreObject, targets), 0, NULL},
    {"_burst_free", T_OBJECT, offsetof(NetworkCoreObject, burst_free), 0,
     NULL},
    {"messages_delivered", T_LONGLONG,
     offsetof(NetworkCoreObject, messages_delivered), 0, NULL},
    {"delivery_entries", T_LONGLONG,
     offsetof(NetworkCoreObject, delivery_entries), 0, NULL},
    {"bursts_reused", T_LONGLONG,
     offsetof(NetworkCoreObject, bursts_reused), 0, NULL},
    {NULL}
};

static PyTypeObject NetworkCore_Type = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro._accel._ccore.NetworkCore",
    .tp_basicsize = sizeof(NetworkCoreObject),
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC |
                Py_TPFLAGS_BASETYPE,
    .tp_new = PyType_GenericNew,
    .tp_init = (initproc)NetworkCore_init,
    .tp_dealloc = (destructor)NetworkCore_dealloc,
    .tp_traverse = (traverseproc)NetworkCore_traverse,
    .tp_clear = (inquiry)NetworkCore_clear,
    .tp_methods = NetworkCore_methods,
    .tp_getset = NetworkCore_getsets,
    .tp_members = NetworkCore_members,
    .tp_doc = "FIFO channel fabric hot path (compiled core).",
};

/* ------------------------------------------------------------------ */
/* HistoryBuilderBase                                                 */
/* ------------------------------------------------------------------ */

typedef struct {
    PyObject_HEAD
    Py_ssize_t n;
    PyObject *events;        /* list */
    PyObject *vectors;       /* list of stamped tuples */
    long long *current;      /* n*n in-place clock rows */
    PyObject *send_vec;      /* uid -> stamped tuple of the send */
    PyObject *send_index;
    PyObject *recv_index;
    PyObject *crash_index;
    PyObject *failed_index;
    PyObject *recover_index;
    PyObject *proc_indices;  /* list of n lists */
    PyObject *observers;     /* list */
} BuilderObject;

static PyTypeObject Builder_Type;

static int builder_append_one(BuilderObject *self, PyObject *event);

static int
Builder_init(BuilderObject *self, PyObject *args, PyObject *kwds)
{
    static char *kwlist[] = {"n", "events", NULL};
    Py_ssize_t n;
    PyObject *events = NULL;
    if (!error_installed() || !event_types_installed())
        return -1;
    if (!PyArg_ParseTupleAndKeywords(args, kwds, "n|O", kwlist, &n,
                                     &events))
        return -1;
    if (n < 1) {
        PyErr_Format(PyExc_ValueError,
                     "need at least one process, got n=%zd", n);
        return -1;
    }
    self->n = n;
    PyMem_Free(self->current);
    self->current = PyMem_Calloc((size_t)(n * n), sizeof(long long));
    if (self->current == NULL) {
        PyErr_NoMemory();
        return -1;
    }
#define FRESH(field, ctor)                   \
    do {                                     \
        PyObject *o_ = (ctor);               \
        if (o_ == NULL)                      \
            return -1;                       \
        Py_XSETREF(self->field, o_);         \
    } while (0)
    FRESH(events, PyList_New(0));
    FRESH(vectors, PyList_New(0));
    FRESH(send_vec, PyDict_New());
    FRESH(send_index, PyDict_New());
    FRESH(recv_index, PyDict_New());
    FRESH(crash_index, PyDict_New());
    FRESH(failed_index, PyDict_New());
    FRESH(recover_index, PyDict_New());
    FRESH(observers, PyList_New(0));
    FRESH(proc_indices, PyList_New(n));
#undef FRESH
    for (Py_ssize_t i = 0; i < n; i++) {
        PyObject *lst = PyList_New(0);
        if (lst == NULL)
            return -1;
        PyList_SET_ITEM(self->proc_indices, i, lst);
    }
    if (events != NULL && events != Py_None) {
        PyObject *it = PyObject_GetIter(events);
        if (it == NULL)
            return -1;
        PyObject *event;
        while ((event = PyIter_Next(it)) != NULL) {
            int r = builder_append_one(self, event);
            Py_DECREF(event);
            if (r < 0) {
                Py_DECREF(it);
                return -1;
            }
        }
        Py_DECREF(it);
        if (PyErr_Occurred())
            return -1;
    }
    return 0;
}

static int
Builder_traverse(BuilderObject *self, visitproc visit, void *arg)
{
    Py_VISIT(self->events);
    Py_VISIT(self->vectors);
    Py_VISIT(self->send_vec);
    Py_VISIT(self->send_index);
    Py_VISIT(self->recv_index);
    Py_VISIT(self->crash_index);
    Py_VISIT(self->failed_index);
    Py_VISIT(self->recover_index);
    Py_VISIT(self->proc_indices);
    Py_VISIT(self->observers);
    return 0;
}

static int
Builder_clear(BuilderObject *self)
{
    Py_CLEAR(self->events);
    Py_CLEAR(self->vectors);
    Py_CLEAR(self->send_vec);
    Py_CLEAR(self->send_index);
    Py_CLEAR(self->recv_index);
    Py_CLEAR(self->crash_index);
    Py_CLEAR(self->failed_index);
    Py_CLEAR(self->recover_index);
    Py_CLEAR(self->proc_indices);
    Py_CLEAR(self->observers);
    return 0;
}

static void
Builder_dealloc(BuilderObject *self)
{
    PyObject_GC_UnTrack(self);
    Builder_clear(self);
    PyMem_Free(self->current);
    self->current = NULL;
    Py_TYPE(self)->tp_free((PyObject *)self);
}

/* The recorder's per-event fast path: one stamped-tuple allocation,
 * class-identity dispatch against the installed event types, indices
 * extended in place. Mirrors HistoryBuilder.append_one exactly. */
static int
builder_append_one(BuilderObject *self, PyObject *event)
{
    Py_ssize_t n = self->n;
    PyObject *proc_obj = PyObject_GetAttr(event, s_proc);
    if (proc_obj == NULL)
        return -1;
    Py_ssize_t proc = PyLong_AsSsize_t(proc_obj);
    if (proc == -1 && PyErr_Occurred()) {
        Py_DECREF(proc_obj);
        return -1;
    }
    if (proc < 0 || proc >= n) {
        PyErr_Format(PyExc_ValueError,
                     "event process %zd outside universe 0..%zd: %R",
                     proc, n - 1, event);
        Py_DECREF(proc_obj);
        return -1;
    }
    Py_ssize_t idx = PyList_GET_SIZE(self->events);
    PyObject *idx_obj = PyLong_FromSsize_t(idx);
    if (idx_obj == NULL) {
        Py_DECREF(proc_obj);
        return -1;
    }
    long long *row = self->current + proc * n;
    PyTypeObject *cls = Py_TYPE(event);
    PyObject *stamped = NULL;
    PyObject *uid = NULL;
    if ((PyObject *)cls == g_recv_event) {
        PyObject *msg = PyObject_GetAttr(event, s_msg);
        if (msg == NULL)
            goto error;
        uid = PyObject_GetAttr(msg, s_uid);
        Py_DECREF(msg);
        if (uid == NULL)
            goto error;
        PyObject *origin = PyDict_GetItemWithError(self->send_vec, uid);
        if (origin == NULL && PyErr_Occurred())
            goto error;
        if (origin != NULL) {
            for (Py_ssize_t q = 0; q < n; q++) {
                PyObject *ov = PyTuple_GET_ITEM(origin, q);
                long long v = PyLong_AsLongLong(ov);
                if (v == -1 && PyErr_Occurred())
                    goto error;
                if (v > row[q])
                    row[q] = v;
            }
        }
        row[proc] += 1;
        stamped = PyTuple_New(n);
        if (stamped == NULL)
            goto error;
        for (Py_ssize_t q = 0; q < n; q++) {
            PyObject *v = PyLong_FromLongLong(row[q]);
            if (v == NULL)
                goto error;
            PyTuple_SET_ITEM(stamped, q, v);
        }
        if (PyDict_SetDefault(self->recv_index, uid, idx_obj) == NULL)
            goto error;
        Py_CLEAR(uid);
    }
    else {
        row[proc] += 1;
        stamped = PyTuple_New(n);
        if (stamped == NULL)
            goto error;
        for (Py_ssize_t q = 0; q < n; q++) {
            PyObject *v = PyLong_FromLongLong(row[q]);
            if (v == NULL)
                goto error;
            PyTuple_SET_ITEM(stamped, q, v);
        }
        if ((PyObject *)cls == g_send_event) {
            PyObject *msg = PyObject_GetAttr(event, s_msg);
            if (msg == NULL)
                goto error;
            uid = PyObject_GetAttr(msg, s_uid);
            Py_DECREF(msg);
            if (uid == NULL)
                goto error;
            if (PyDict_SetItem(self->send_vec, uid, stamped) < 0)
                goto error;
            if (PyDict_SetDefault(self->send_index, uid, idx_obj) == NULL)
                goto error;
            Py_CLEAR(uid);
        }
        else if ((PyObject *)cls == g_crash_event) {
            if (PyDict_SetDefault(self->crash_index, proc_obj, idx_obj)
                == NULL)
                goto error;
        }
        else if ((PyObject *)cls == g_failed_event) {
            PyObject *target = PyObject_GetAttr(event, s_target);
            if (target == NULL)
                goto error;
            PyObject *key = PyTuple_Pack(2, proc_obj, target);
            Py_DECREF(target);
            if (key == NULL)
                goto error;
            PyObject *r = PyDict_SetDefault(self->failed_index, key,
                                            idx_obj);
            Py_DECREF(key);
            if (r == NULL)
                goto error;
        }
        else if ((PyObject *)cls == g_recover_event) {
            PyObject *inc = PyObject_GetAttr(event, s_incarnation);
            if (inc == NULL)
                goto error;
            PyObject *key = PyTuple_Pack(2, proc_obj, inc);
            Py_DECREF(inc);
            if (key == NULL)
                goto error;
            PyObject *r = PyDict_SetDefault(self->recover_index, key,
                                            idx_obj);
            Py_DECREF(key);
            if (r == NULL)
                goto error;
        }
    }
    if (PyList_Append(self->events, event) < 0)
        goto error;
    if (PyList_Append(self->vectors, stamped) < 0)
        goto error;
    PyObject *per_proc = PyList_GET_ITEM(self->proc_indices, proc);
    if (PyList_Append(per_proc, idx_obj) < 0)
        goto error;
    if (PyList_GET_SIZE(self->observers) > 0) {
        for (Py_ssize_t i = 0; i < PyList_GET_SIZE(self->observers); i++) {
            PyObject *observer = PyList_GET_ITEM(self->observers, i);
            PyObject *res = PyObject_CallFunctionObjArgs(
                observer, idx_obj, event, stamped, NULL);
            if (res == NULL)
                goto error;
            Py_DECREF(res);
        }
    }
    Py_DECREF(stamped);
    Py_DECREF(idx_obj);
    Py_DECREF(proc_obj);
    return 0;
error:
    Py_XDECREF(stamped);
    Py_XDECREF(uid);
    Py_DECREF(idx_obj);
    Py_DECREF(proc_obj);
    return -1;
}

static PyObject *
Builder_append_one(BuilderObject *self, PyObject *event)
{
    if (builder_append_one(self, event) < 0)
        return NULL;
    Py_RETURN_NONE;
}

static PyObject *
Builder_append(BuilderObject *self, PyObject *args)
{
    Py_ssize_t k = PyTuple_GET_SIZE(args);
    for (Py_ssize_t i = 0; i < k; i++) {
        if (builder_append_one(self, PyTuple_GET_ITEM(args, i)) < 0)
            return NULL;
    }
    return Py_NewRef((PyObject *)self);
}

static PyObject *
Builder_attach_observer(BuilderObject *self, PyObject *observer)
{
    if (PyList_Append(self->observers, observer) < 0)
        return NULL;
    Py_RETURN_NONE;
}

static PyObject *
Builder_detach_observers(BuilderObject *self, PyObject *noarg)
{
    if (PyList_SetSlice(self->observers, 0,
                        PyList_GET_SIZE(self->observers), NULL) < 0)
        return NULL;
    Py_RETURN_NONE;
}

static Py_ssize_t
Builder_length(BuilderObject *self)
{
    return self->events ? PyList_GET_SIZE(self->events) : 0;
}

static PyObject *
Builder_iter(BuilderObject *self)
{
    return PyObject_GetIter(self->events);
}

/* The preallocated clock rows, as lists (tests/introspection only). */
static PyObject *
Builder_get_current(BuilderObject *self, void *closure)
{
    Py_ssize_t n = self->n;
    PyObject *rows = PyList_New(n);
    if (rows == NULL)
        return NULL;
    for (Py_ssize_t p = 0; p < n; p++) {
        PyObject *r = PyList_New(n);
        if (r == NULL) {
            Py_DECREF(rows);
            return NULL;
        }
        for (Py_ssize_t q = 0; q < n; q++) {
            PyObject *v = PyLong_FromLongLong(self->current[p * n + q]);
            if (v == NULL) {
                Py_DECREF(r);
                Py_DECREF(rows);
                return NULL;
            }
            PyList_SET_ITEM(r, q, v);
        }
        PyList_SET_ITEM(rows, p, r);
    }
    return rows;
}

static PySequenceMethods Builder_as_sequence = {
    .sq_length = (lenfunc)Builder_length,
};

static PyMethodDef Builder_methods[] = {
    {"append_one", (PyCFunction)Builder_append_one, METH_O,
     "Append a single event - the recorder's per-event fast path."},
    {"append", (PyCFunction)Builder_append, METH_VARARGS,
     "Extend the history and every derived structure in O(delta)."},
    {"attach_observer", (PyCFunction)Builder_attach_observer, METH_O,
     "Call observer(index, event, vector) after every append."},
    {"detach_observers", (PyCFunction)Builder_detach_observers,
     METH_NOARGS, "Drop every attached observer."},
    {NULL}
};

static PyGetSetDef Builder_getsets[] = {
    {"_current", (getter)Builder_get_current, NULL,
     "Copy of the per-process clock rows (introspection only).", NULL},
    {NULL}
};

static PyMemberDef Builder_members[] = {
    {"_n", T_PYSSIZET, offsetof(BuilderObject, n), READONLY, NULL},
    {"_events", T_OBJECT_EX, offsetof(BuilderObject, events), READONLY,
     NULL},
    {"_vectors", T_OBJECT_EX, offsetof(BuilderObject, vectors), READONLY,
     NULL},
    {"_send_vec", T_OBJECT_EX, offsetof(BuilderObject, send_vec),
     READONLY, NULL},
    {"_send_index", T_OBJECT_EX, offsetof(BuilderObject, send_index),
     READONLY, NULL},
    {"_recv_index", T_OBJECT_EX, offsetof(BuilderObject, recv_index),
     READONLY, NULL},
    {"_crash_index", T_OBJECT_EX, offsetof(BuilderObject, crash_index),
     READONLY, NULL},
    {"_failed_index", T_OBJECT_EX, offsetof(BuilderObject, failed_index),
     READONLY, NULL},
    {"_recover_index", T_OBJECT_EX,
     offsetof(BuilderObject, recover_index), READONLY, NULL},
    {"_proc_indices", T_OBJECT_EX,
     offsetof(BuilderObject, proc_indices), READONLY, NULL},
    {"_observers", T_OBJECT_EX, offsetof(BuilderObject, observers),
     READONLY, NULL},
    {NULL}
};

static PyTypeObject Builder_Type = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro._accel._ccore.HistoryBuilderBase",
    .tp_basicsize = sizeof(BuilderObject),
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC |
                Py_TPFLAGS_BASETYPE,
    .tp_new = PyType_GenericNew,
    .tp_init = (initproc)Builder_init,
    .tp_dealloc = (destructor)Builder_dealloc,
    .tp_traverse = (traverseproc)Builder_traverse,
    .tp_clear = (inquiry)Builder_clear,
    .tp_methods = Builder_methods,
    .tp_getset = Builder_getsets,
    .tp_members = Builder_members,
    .tp_as_sequence = &Builder_as_sequence,
    .tp_iter = (getiterfunc)Builder_iter,
    .tp_doc = "Incremental History builder, O(delta) per appended event.",
};

/* ------------------------------------------------------------------ */
/* Module functions                                                   */
/* ------------------------------------------------------------------ */

static PyObject *
mod_noop(PyObject *module, PyObject *noarg)
{
    Py_RETURN_NONE;
}

static PyObject *
mod_set_active_pool(PyObject *module, PyObject *pool)
{
    if (pool == Py_None)
        Py_CLEAR(g_active_pool);
    else
        Py_XSETREF(g_active_pool, Py_NewRef(pool));
    Py_RETURN_NONE;
}

static PyObject *
mod_get_active_pool(PyObject *module, PyObject *noarg)
{
    if (g_active_pool == NULL)
        Py_RETURN_NONE;
    return Py_NewRef(g_active_pool);
}

static PyObject *
mod_install_error(PyObject *module, PyObject *error)
{
    Py_XSETREF(g_sim_error, Py_NewRef(error));
    Py_RETURN_NONE;
}

static PyObject *
mod_install_event_types(PyObject *module, PyObject *args)
{
    PyObject *send, *recv, *crash, *failed, *recover;
    if (!PyArg_ParseTuple(args, "OOOOO", &send, &recv, &crash,
                          &failed, &recover))
        return NULL;
    Py_XSETREF(g_send_event, Py_NewRef(send));
    Py_XSETREF(g_recv_event, Py_NewRef(recv));
    Py_XSETREF(g_crash_event, Py_NewRef(crash));
    Py_XSETREF(g_failed_event, Py_NewRef(failed));
    Py_XSETREF(g_recover_event, Py_NewRef(recover));
    Py_RETURN_NONE;
}

static PyObject *
mod_set_random_type(PyObject *module, PyObject *cls)
{
    if (!PyType_Check(cls)) {
        PyErr_SetString(PyExc_TypeError, "expected a type");
        return NULL;
    }
    Py_INCREF(cls);
    Py_XDECREF((PyObject *)g_random_type);
    g_random_type = (PyTypeObject *)cls;
    Py_RETURN_NONE;
}

static PyObject *
mod_register_delay_fastpath(PyObject *module, PyObject *args)
{
    PyObject *cls;
    int kind;
    if (!PyArg_ParseTuple(args, "Oi", &cls, &kind))
        return NULL;
    if (!PyType_Check(cls)) {
        PyErr_SetString(PyExc_TypeError, "expected a type");
        return NULL;
    }
    if (kind < 0 || kind > 4) {
        PyErr_SetString(PyExc_ValueError, "delay kind must be 0..4");
        return NULL;
    }
    Py_INCREF(cls);
    Py_XDECREF((PyObject *)g_delay_types[kind]);
    g_delay_types[kind] = (PyTypeObject *)cls;
    Py_RETURN_NONE;
}

/* k delay samples via the compiled kernels — the sample_batch hot loop.
 * Consumes rng.random() exactly as k .sample() calls would; callers
 * (repro._accel.delays) pre-validate params and rng type. */
static PyObject *
mod_batch_sample(PyObject *module, PyObject *args)
{
    int kind;
    double p0, p1;
    PyObject *rng;
    Py_ssize_t k;
    if (!PyArg_ParseTuple(args, "iddOn", &kind, &p0, &p1, &rng, &k))
        return NULL;
    if (kind < 0 || kind > 4) {
        PyErr_SetString(PyExc_ValueError, "delay kind must be 0..4");
        return NULL;
    }
    PyObject *out = PyList_New(k);
    if (out == NULL)
        return NULL;
    PyObject *rng_random = NULL;
    if (kind != 0) {
        rng_random = PyObject_GetAttr(rng, s_random);
        if (rng_random == NULL) {
            Py_DECREF(out);
            return NULL;
        }
    }
#define BATCH_NEXT(var)                                      \
    do {                                                     \
        PyObject *r_ = PyObject_CallNoArgs(rng_random);      \
        if (r_ == NULL)                                      \
            goto error;                                      \
        (var) = PyFloat_AsDouble(r_);                        \
        Py_DECREF(r_);                                       \
        if ((var) == -1.0 && PyErr_Occurred())               \
            goto error;                                      \
    } while (0)
    for (Py_ssize_t i = 0; i < k; i++) {
        double d = 0.0, u;
        switch (kind) {
        case 0:
            d = p0;
            break;
        case 1:
            BATCH_NEXT(u);
            d = p0 + (p1 - p0) * u;
            break;
        case 2:
            BATCH_NEXT(u);
            d = -log(1.0 - u) / p0;
            break;
        case 3: {
            double z, u1, u2;
            for (;;) {
                BATCH_NEXT(u1);
                BATCH_NEXT(u2);
                u2 = 1.0 - u2;
                z = g_nv_magic * (u1 - 0.5) / u2;
                if (z * z / 4.0 <= -log(u2))
                    break;
            }
            d = exp(p0 + z * p1);
            break;
        }
        case 4:
            BATCH_NEXT(u);
            u = 1.0 - u;
            d = p0 * pow(u, p1);
            break;
        }
        PyObject *f = PyFloat_FromDouble(d);
        if (f == NULL)
            goto error;
        PyList_SET_ITEM(out, i, f);
    }
#undef BATCH_NEXT
    Py_XDECREF(rng_random);
    return out;
error:
    Py_XDECREF(rng_random);
    Py_DECREF(out);
    return NULL;
}

static PyMethodDef module_methods[] = {
    {"_noop", (PyCFunction)mod_noop, METH_NOARGS,
     "Callback of parked (recycled but pooled) entries."},
    {"_set_active_pool", (PyCFunction)mod_set_active_pool, METH_O,
     "Install (or clear, with None) the ambient storage pool."},
    {"_get_active_pool", (PyCFunction)mod_get_active_pool, METH_NOARGS,
     "The ambient storage pool, or None."},
    {"_install_error", (PyCFunction)mod_install_error, METH_O,
     "Install SimulationError (the exception raised by the core)."},
    {"_install_event_types", (PyCFunction)mod_install_event_types,
     METH_VARARGS,
     "Install the five event dataclasses the builder dispatches on."},
    {"_set_random_type", (PyCFunction)mod_set_random_type, METH_O,
     "Install random.Random for the exact-type fast-path gate."},
    {"_register_delay_fastpath", (PyCFunction)mod_register_delay_fastpath,
     METH_VARARGS,
     "Register a delay-model class for compiled sampling (kind 0..4)."},
    {"_batch_sample", (PyCFunction)mod_batch_sample, METH_VARARGS,
     "k compiled delay samples with a bit-identical rng stream."},
    {NULL}
};

static struct PyModuleDef ccore_module = {
    PyModuleDef_HEAD_INIT,
    .m_name = "repro._accel._ccore",
    .m_doc = "Compiled event core (see repro._accel).",
    .m_size = -1,
    .m_methods = module_methods,
};

PyMODINIT_FUNC
PyInit__ccore(void)
{
#define INTERN(var, text)                        \
    do {                                         \
        (var) = PyUnicode_InternFromString(text);\
        if ((var) == NULL)                       \
            return NULL;                         \
    } while (0)
    INTERN(s_entries_reused, "entries_reused");
    INTERN(s_entries, "_entries");
    INTERN(s_max_entries, "_max_entries");
    INTERN(s_adopt, "adopt");
    INTERN(s_adopt_bursts, "adopt_bursts");
    INTERN(s_recycle, "recycle");
    INTERN(s_discard, "discard");
    INTERN(s_app, "app");
    INTERN(s_protocol, "protocol");
    INTERN(s_system, "system");
    INTERN(s_sample, "sample");
    INTERN(s_random, "random");
    INTERN(s_deliver, "deliver");
    INTERN(s_proc, "proc");
    INTERN(s_msg, "msg");
    INTERN(s_uid, "uid");
    INTERN(s_target, "target");
    INTERN(s_incarnation, "incarnation");
    INTERN(s_open_unbatched, "_open_unbatched");
    INTERN(s_param_delay, "delay");
    INTERN(s_param_low, "low");
    INTERN(s_param_high, "high");
    INTERN(s_param_mean, "mean");
    INTERN(s_param_median, "median");
    INTERN(s_param_sigma, "sigma");
    INTERN(s_param_scale, "scale");
    INTERN(s_param_alpha, "alpha");
#undef INTERN
    g_nv_magic = 4.0 * exp(-0.5) / sqrt(2.0);  /* random.NV_MAGICCONST */
    if (PyType_Ready(&Entry_Type) < 0 ||
        PyType_Ready(&TimerHandle_Type) < 0 ||
        PyType_Ready(&Scheduler_Type) < 0 ||
        PyType_Ready(&ChannelState_Type) < 0 ||
        PyType_Ready(&Burst_Type) < 0 ||
        PyType_Ready(&NetworkCore_Type) < 0 ||
        PyType_Ready(&Builder_Type) < 0)
        return NULL;
    PyObject *m = PyModule_Create(&ccore_module);
    if (m == NULL)
        return NULL;
    if (PyModule_AddObjectRef(m, "_Entry", (PyObject *)&Entry_Type) < 0 ||
        PyModule_AddObjectRef(m, "TimerHandle",
                              (PyObject *)&TimerHandle_Type) < 0 ||
        PyModule_AddObjectRef(m, "Scheduler",
                              (PyObject *)&Scheduler_Type) < 0 ||
        PyModule_AddObjectRef(m, "_ChannelState",
                              (PyObject *)&ChannelState_Type) < 0 ||
        PyModule_AddObjectRef(m, "_Burst", (PyObject *)&Burst_Type) < 0 ||
        PyModule_AddObjectRef(m, "NetworkCore",
                              (PyObject *)&NetworkCore_Type) < 0 ||
        PyModule_AddObjectRef(m, "HistoryBuilderBase",
                              (PyObject *)&Builder_Type) < 0) {
        Py_DECREF(m);
        return NULL;
    }
    g_noop = PyObject_GetAttrString(m, "_noop");
    if (g_noop == NULL) {
        Py_DECREF(m);
        return NULL;
    }
    return m;
}
