"""Compiled batch delay sampling (see ``repro.sim.delays``).

The C kernels in ``_ccore`` re-implement the exact CPython
``random.Random`` arithmetic (uniform / expovariate / lognormvariate via
Kinderman-Monahan / paretovariate) so the rng *stream* — not just the
distribution — is bit-identical to the pure samplers. Because that
identity depends on the host's libm and on ``random.py`` internals not
having changed, each kernel is **probed at install time** against the
real ``random.Random`` and only installed when it reproduces the pure
draws exactly; a failed probe silently leaves that distribution on the
pure path (correct, merely slower).

Install hooks two things per distribution:

* ``_ccore._register_delay_fastpath`` — lets the compiled ``Network.send``
  sample inline without a Python dispatch per message.
* a ``sample_batch`` override on the (shared) pure dataclass — the batch
  seam used by ``release_channel``; it falls back to the original
  implementation for non-``random.Random`` rngs and for parameter values
  where the pure code raises (so tracebacks and rng consumption on error
  paths stay identical).
"""

from __future__ import annotations

import math
import random

from repro._accel import _ccore

_installed = False


def _probe_ok(kind, p0, p1, expected, k=6, seed=987654321) -> bool:
    """True when the C kernel reproduces ``k`` pure draws bit-for-bit."""
    rng_c = random.Random(seed)
    rng_py = random.Random(seed)
    try:
        got = _ccore._batch_sample(kind, p0, p1, rng_c, k)
    except Exception:
        return False
    want = [expected(rng_py) for _ in range(k)]
    # State equality proves the kernel consumed exactly the same number
    # of draws, not just that the outputs collide.
    return got == want and rng_c.getstate() == rng_py.getstate()


def _patch(cls, kind, params) -> None:
    original = cls.sample_batch

    def sample_batch(self, rng, pairs):
        if type(rng) is not random.Random:
            return original(self, rng, pairs)
        try:
            p0, p1 = params(self)
        except (ZeroDivisionError, ValueError):
            # Parameters the pure sampler raises on: take the pure path
            # so the exception (and any rng consumption before it) is
            # byte-identical.
            return original(self, rng, pairs)
        return _ccore._batch_sample(kind, p0, p1, rng, len(pairs))

    sample_batch.__doc__ = original.__doc__
    cls.sample_batch = sample_batch


def install_batch_kernels() -> None:
    """Probe and install the compiled kernels (idempotent).

    Called from the bottom of ``repro.sim.delays`` when the accel core is
    selected; the classes are passed through their defining module to
    avoid importing a partially-initialised module.
    """
    global _installed
    if _installed:
        return
    _installed = True
    from repro.sim.delays import (
        ConstantDelay,
        ExponentialDelay,
        LogNormalDelay,
        ParetoDelay,
        UniformDelay,
    )

    # Constant consumes no randomness — nothing to probe, and the pure
    # sample_batch ([delay] * k) is already optimal; register only the
    # send-path kernel.
    _ccore._register_delay_fastpath(ConstantDelay, 0)
    if _probe_ok(1, 0.25, 1.75, lambda r: r.uniform(0.25, 1.75)):
        _ccore._register_delay_fastpath(UniformDelay, 1)
        _patch(UniformDelay, 1, lambda self: (self.low, self.high))
    if _probe_ok(2, 1.0 / 1.3, 0.0, lambda r: r.expovariate(1.0 / 1.3)):
        _ccore._register_delay_fastpath(ExponentialDelay, 2)
        _patch(ExponentialDelay, 2, lambda self: (1.0 / self.mean, 0.0))
    if _probe_ok(
        3,
        math.log(1.2),
        0.6,
        lambda r: r.lognormvariate(math.log(1.2), 0.6),
    ):
        _ccore._register_delay_fastpath(LogNormalDelay, 3)
        _patch(
            LogNormalDelay,
            3,
            lambda self: (math.log(self.median), self.sigma),
        )
    if _probe_ok(4, 0.5, -1.0 / 1.5, lambda r: 0.5 * r.paretovariate(1.5)):
        _ccore._register_delay_fastpath(ParetoDelay, 4)
        _patch(
            ParetoDelay, 4, lambda self: (self.scale, -1.0 / self.alpha)
        )
