"""Optional compiled event core.

This package wraps the C extension ``repro._accel._ccore`` with thin
Python subclasses that complete the pure modules' public surface. It is
selected at import time by :mod:`repro._core` (``REPRO_CORE=accel|pure``,
default: accel when the extension is importable) — nothing should import
it directly except the shim and the cross-core tests.

The pure-Python modules remain the **authoritative reference**: every
behaviour here, down to counter visibility, rng stream consumption, and
error-message text, must be bit-identical to them. The contract is
enforced by the cross-core digest property tests under ``tests/accel/``.

Importing this package raises ``ImportError`` when the extension was not
built — callers (the shim) treat that as "use the pure core".
"""

from __future__ import annotations

import random

# Imported by absolute module path (not `from repro._accel import ...`)
# so a missing extension reads as "No module named 'repro._accel._ccore'"
# rather than a spurious circular-import message.
import repro._accel._ccore as _ccore
from repro.errors import SimulationError

# Hand the extension the exception type it raises and random.Random for
# the exact-type gate on the compiled delay kernels. This module stays
# import-light on purpose — the canonical modules import it from their
# bottom-of-module core-selection blocks, so pulling in repro.core here
# would be circular. The event alphabet (needed only by the history
# builder) is installed by repro._accel.history.
_ccore._install_error(SimulationError)
_ccore._set_random_type(random.Random)

__all__ = ["_ccore"]
