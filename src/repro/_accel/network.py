"""Accelerated network surface (see ``repro.sim.network``).

The hot path — ``send``, burst formation, and burst draining — lives in
the C ``NetworkCore``; this subclass supplies the constructor defaults
and the cold adversary/introspection methods, all byte-for-byte the pure
semantics (the docstrings there are authoritative).
"""

from __future__ import annotations

import random
from typing import Callable

from repro._accel._ccore import (  # noqa: F401  (re-exported surface)
    NetworkCore,
    _Burst,
    _ChannelState,
)
from repro.core.messages import Message

DeliverFn = Callable[[int, int, Message, str], None]
HoldPredicate = Callable[[int, int, Message], bool]

KINDS = ("app", "protocol", "system")
_BURST_FREE_MAX = 4096


class Network(NetworkCore):
    """All n^2 channels (including self-channels, used by Section 5)."""

    def __init__(
        self,
        scheduler,
        n: int,
        delay_model=None,
        rng: random.Random | None = None,
        deliver: DeliverFn | None = None,
        batch: bool = True,
    ):
        if delay_model is None:
            # Imported lazily: a top-level import of repro.sim.delays
            # would pull the whole repro.sim package in before this
            # module finishes, which is circular when this module is
            # what repro.sim.network is waiting on.
            from repro.sim.delays import UniformDelay

            delay_model = UniformDelay()
        super().__init__(
            scheduler,
            n,
            delay_model,
            rng or random.Random(0),
            deliver,
            batch,
        )

    # ------------------------------------------------------------------
    # Unbatched delivery (per-message closure; reference/debug path)
    # ------------------------------------------------------------------

    def _open_unbatched(
        self, state, src, dst, msg, kind, due, periodic
    ) -> None:
        """Per-message delivery entry for ``batch=False`` (cold path)."""

        def deliver() -> None:
            state.delivered += 1
            self.messages_delivered += 1
            deliver_fn = self._deliver_fn
            assert deliver_fn is not None
            deliver_fn(src, dst, msg, kind)

        self.delivery_entries += 1
        self._scheduler.schedule_callback_at(due, deliver, periodic=periodic)

    # ------------------------------------------------------------------
    # Adversary interface (used via repro.sim.adversary)
    # ------------------------------------------------------------------

    def _matches_hold(self, src: int, dst: int, msg: Message) -> bool:
        return any(pred(src, dst, msg) for pred in self._hold_predicates)

    def add_hold_predicate(self, predicate: HoldPredicate) -> HoldPredicate:
        """Install a hold rule; returns it for later removal."""
        self._hold_predicates.append(predicate)
        return predicate

    def remove_hold_predicate(self, predicate: HoldPredicate) -> None:
        """Remove a previously installed hold rule."""
        self._hold_predicates.remove(predicate)

    def block_channel(self, src: int, dst: int) -> None:
        """Unconditionally hold all future traffic on C_{src,dst}."""
        self._state(src, dst).blocked = True

    def release_channel(self, src: int, dst: int) -> int:
        """Deliver a blocked channel's queue (FIFO) and unblock it."""
        state = self._state(src, dst)
        state.blocked = False
        held, state.held = state.held, []
        if not held:
            return 0
        delays = self._delay_model.sample_batch(
            self._rng, [(src, dst)] * len(held)
        )
        for (msg, kind), delay in zip(held, delays):
            self._schedule_delivery(state, src, dst, msg, kind, delay)
        return len(held)

    def clear_holds(self) -> int:
        """Remove every installed hold rule; returns how many removed."""
        removed = len(self._hold_predicates)
        self._hold_predicates.clear()
        return removed

    def release_all(self) -> int:
        """Release every blocked channel; returns messages released."""
        released = 0
        for (src, dst), state in self._channels.items():
            if state.blocked or state.held:
                released += self.release_channel(src, dst)
        return released

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def held_messages(self) -> dict[tuple[int, int], int]:
        """How many messages are currently held, per blocked channel."""
        return {
            channel: len(state.held)
            for channel, state in self._channels.items()
            if state.held
        }

    def channel_stats(self) -> dict[tuple[int, int], tuple[int, int]]:
        """Per-channel ``(sent, delivered)`` counters."""
        return {
            channel: (state.sent, state.delivered)
            for channel, state in self._channels.items()
        }
