"""Accelerated history builder (see ``repro.core.history``).

``append_one`` — the recorder's per-event fast path — runs in C
(``HistoryBuilderBase``), with the vector-clock rows held as a flat
int64 array instead of per-process Python lists. This subclass adds the
snapshot handoff into the (pure, authoritative) ``History`` and the
introspection properties the pure builder exposes.
"""

from __future__ import annotations

from typing import Iterator

from repro._accel import _ccore
from repro._accel._ccore import HistoryBuilderBase
from repro.core.events import (
    CrashEvent,
    FailedEvent,
    RecoverEvent,
    RecvEvent,
    SendEvent,
)

# The (closed) event alphabet the compiled builder dispatches on by class
# identity. Installed here, not in repro._accel.__init__: this module is
# imported from the bottom of repro.core.history, by which point
# repro.core.events is fully loaded — importing it any earlier would be
# circular.
_ccore._install_event_types(
    SendEvent, RecvEvent, CrashEvent, FailedEvent, RecoverEvent
)


class HistoryBuilder(HistoryBuilderBase):
    """Incrementally builds a ``History``, O(delta) per appended event."""

    @classmethod
    def from_history(cls, history) -> "HistoryBuilder":
        """A builder primed with an existing history's events."""
        return cls(history.n, history.events)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def n(self) -> int:
        """Number of processes in the system."""
        return self._n

    @property
    def events(self) -> tuple:
        """The events appended so far, in order."""
        return tuple(self._events)

    def event_at(self, index: int):
        """The event at ``index`` (no O(len) tuple copy)."""
        return self._events[index]

    @property
    def crash_index(self) -> dict:
        """Live view of process id -> crash event index (read-only use)."""
        return self._crash_index

    @property
    def failed_index(self) -> dict:
        """Live view of (detector, target) -> failed event index."""
        return self._failed_index

    def __iter__(self) -> Iterator:
        return iter(self._events)

    # ------------------------------------------------------------------
    # Snapshot
    # ------------------------------------------------------------------

    def snapshot(self):
        """An immutable, fully cache-seeded ``History`` of the state so far.

        Identical handoff to the pure builder: the snapshot owns copies
        of every container, so later appends never mutate it. ``History``
        itself is never swapped — the immutable artifact (and its digest)
        is always the pure class.
        """
        from repro.core.history import History

        return History._precomputed(
            tuple(self._events),
            self._n,
            vectors=list(self._vectors),
            send_index=dict(self._send_index),
            recv_index=dict(self._recv_index),
            crash_index=dict(self._crash_index),
            failed_index=dict(self._failed_index),
            recover_index=dict(self._recover_index),
            proc_indices=[list(ix) for ix in self._proc_indices],
        )
