#!/usr/bin/env python3
"""The Theorem 6 adversary, live: building a k-cycle of failure detections.

Walks the Appendix A.3 construction on the generic one-round SUSP/ACK
protocol: the processes are split into k shield blocks, each ring member
suspects the next, and the adversary holds all gossip about a target away
from the target's own block. With quorums one below the Theorem 7 bound
every detection completes and failed-before closes into a k-cycle — the
run is *distinguishable* from fail-stop, and the constraint-cycle
certificate says exactly why. One more confirmation per quorum and the
whole construction starves.

Run:  python examples/adversarial_cycle.py
"""

from repro.analysis.experiments import run_e3_single
from repro.core import min_quorum_size
from repro.core.failed_before import find_cycle
from repro.core.indistinguishability import distinguishability_certificate
from repro.protocols import GenericOneRoundProcess
from repro.sim import build_world


def demonstrate(k: int, n: int) -> None:
    available = n - (-(-n // k))  # confirmations the shields allow
    legal = min_quorum_size(n, k)
    print(f"\n=== k={k}, n={n}: shields allow {available} confirmations, "
          f"Theorem 7 demands {legal} ===")

    for quorum in (available, legal):
        row = run_e3_single(k, n, quorum)
        tag = "BELOW bound" if quorum < legal else "AT bound"
        if row.cycle_formed:
            print(f"quorum={quorum} ({tag}): {row.detections} detections, "
                  f"CYCLE of length {row.cycle_length}")
        else:
            print(f"quorum={quorum} ({tag}): {row.detections} detections, "
                  f"no cycle (construction starves)")

    # Re-run the below-bound case to show the certificate.
    world = build_world(
        n, lambda: GenericOneRoundProcess(quorum_size=available),
        seed=k * 1000 + n,
    )
    blocks = [frozenset(p for p in range(n) if p % k == m) for m in range(k)]
    for target in range(k):
        world.adversary.hold_suspicions_about(target, blocks[target] - {target})
    for i in range(k):
        world.inject_suspicion(i, (i + 1) % k, at=1.0)
    world.run_to_quiescence()
    history = world.history()
    cycle = find_cycle(history)
    print(f"failed-before cycle: "
          + ", ".join(f"{i} fb {j}" for i, j in cycle))
    certificate = distinguishability_certificate(history)
    print("impossibility certificate (circular ordering constraints):")
    for event in certificate:
        print(f"  {event!r}")


def main() -> None:
    for k in (2, 3, 4):
        demonstrate(k, 3 * k)


if __name__ == "__main__":
    main()
