#!/usr/bin/env python3
"""Quickstart: run the Section 5 protocol and check every paper property.

Builds a 9-process asynchronous system, injects one genuine crash and one
*erroneous* suspicion, runs the one-round simulated-fail-stop protocol to
quiescence, then:

1. prints the Figure 1 conformance report,
2. shows the bad pairs (detections that preceded the crash),
3. constructs the Theorem 5 fail-stop witness and verifies that no process
   can distinguish it from what actually happened.

Run:  python examples/quickstart.py
"""

from repro.analysis import analyze
from repro.core import (
    bad_pairs,
    ensure_crashes,
    fail_stop_witness,
    isomorphic,
    verify_witness,
)
from repro.protocols import SfsProcess
from repro.sim import build_world


def main() -> None:
    n, t = 9, 2
    world = build_world(n, lambda: SfsProcess(t=t), seed=7)

    # A genuine crash, noticed by process 0's (simulated) timeout...
    world.inject_crash(4, at=0.5)
    world.inject_suspicion(0, 4, at=1.0)
    # ...and an erroneous suspicion of a perfectly healthy process 5. The
    # adversary briefly shields 5 from the gossip about it, so detections
    # complete while 5 is still running - the fail-stop order is violated.
    world.adversary.hold_suspicions_about(5, {5})
    world.inject_suspicion(3, 5, at=1.2)
    world.scheduler.schedule_at(25.0, world.adversary.heal)

    world.run_to_quiescence()
    history = ensure_crashes(world.history())

    print(f"run finished: {len(history)} events, "
          f"crashed={sorted(history.crashed_processes())}")

    report = analyze(history, world.trace.quorum_records, t=t,
                     complete=False)
    print("\n--- Figure 1 conformance ---")
    print(report.summary())

    pairs = bad_pairs(history)
    print(f"\n--- bad pairs (detection before crash): {len(pairs)} ---")
    for target, detector, fidx, cidx in pairs[:5]:
        print(f"  failed_{detector}({target}) at [{fidx}] precedes "
              f"crash_{target} at [{cidx}]")

    witness = fail_stop_witness(history)
    problems = verify_witness(history, witness)
    print("\n--- Theorem 5 witness ---")
    print(f"witness is a valid fail-stop run: {not problems}")
    print(f"isomorphic to the real run at every process: "
          f"{isomorphic(history, witness)}")
    print(f"bad pairs remaining in witness: {len(bad_pairs(witness))}")
    print("\nNo process inside the system can tell these two runs apart —")
    print("which is exactly what 'simulating fail-stop' means.")


if __name__ == "__main__":
    main()
