#!/usr/bin/env python3
"""Large-cluster sweep: many seeds, a 64-process system, optional workers.

The engine's O(1) quiescence accounting makes large-n runs cheap enough
to sweep: this example runs the echo-protocol cycle-rate experiment (E5)
on an n=64 cluster across a grid of quorum sizes and a batch of seeds,
then repeats the sweep on a process pool and checks — via the content
digest — that parallel execution changed nothing.

Run:  python examples/large_cluster_sweep.py [jobs]
"""

from __future__ import annotations

import sys
import time

from repro.analysis.sweep import rows_digest, run_sweep, sweep_table
from repro.core.bounds import min_quorum_size


def main() -> None:
    jobs = int(sys.argv[1]) if len(sys.argv) > 1 else 2
    n, t = 64, 3
    legal = min_quorum_size(n, t)
    seeds = range(8)
    # Straddle the Theorem 7 bound: one quorum size below it (cycles can
    # form under the adversarial schedule), the legal minimum at it.
    grid = {"quorum_sizes": [(legal - 1,), (legal,)]}
    params = {"n": n, "t": t}

    started = time.perf_counter()
    serial = run_sweep("e5", seeds=seeds, params=params, grid=grid, jobs=1)
    serial_secs = time.perf_counter() - started

    started = time.perf_counter()
    parallel = run_sweep(
        "e5", seeds=seeds, params=params, grid=grid, jobs=jobs
    )
    parallel_secs = time.perf_counter() - started

    print(f"\n== E5 on n={n}, t={t}: quorum {legal - 1} vs {legal}, "
          f"{len(list(seeds))} seeds ==")
    print(sweep_table(serial))
    digest_serial = rows_digest(serial)
    digest_parallel = rows_digest(parallel)
    print(f"\nserial:   {len(serial)} rows in {serial_secs:.2f}s "
          f"digest={digest_serial[:16]}…")
    print(f"parallel: {len(parallel)} rows in {parallel_secs:.2f}s "
          f"(jobs={jobs}) digest={digest_parallel[:16]}…")
    if digest_serial != digest_parallel:
        raise SystemExit("parallel sweep diverged from serial — engine bug")
    print("digests match: the process pool changed nothing but wall time.")


if __name__ == "__main__":
    main()
