#!/usr/bin/env python3
"""Leader election under simulated fail-stop (the paper's Section 1 demo).

Scenario: process 0 leads; the adversary hides the (false!) suspicion
against it, so process 1 takes over while 0 is still alive — a transient
two-leader global state. Then the real leader 1 crashes and 2 succeeds it.

The payoff: the raw run shows split-brain when inspected from the outside,
but the Theorem 5 witness — the run every process *experienced* — never
has two leaders. Election stays internally safe without consensus.

Run:  python examples/election_cascade.py
"""

from repro.apps.election import (
    ElectionProcess,
    leaders_at_every_state,
    leadership_profile,
)
from repro.core import ensure_crashes, fail_stop_witness
from repro.sim import UniformDelay, build_world


def describe(history, title: str) -> None:
    profile = leadership_profile(history)
    print(f"\n--- {title} ---")
    print(f"max concurrent leaders: {profile.max_concurrent}")
    print(f"global states with two or more leaders: "
          f"{profile.positions_with_two_plus} / {profile.total_positions}")
    # Show the distinct leadership regimes in order.
    seen = []
    for leaders in leaders_at_every_state(history):
        if not seen or seen[-1] != leaders:
            seen.append(leaders)
    chain = " -> ".join(
        "{" + ",".join(map(str, sorted(s))) + "}" for s in seen
    )
    print(f"leadership regimes: {chain}")


def main() -> None:
    world = build_world(
        6, lambda: ElectionProcess(t=2), seed=11,
        delay_model=UniformDelay(0.3, 1.2),
    )

    # Falsely depose leader 0, hiding the gossip from it.
    world.adversary.hold_suspicions_about(0, {0})
    world.inject_suspicion(2, 0, at=1.0)
    world.scheduler.schedule_at(30.0, world.adversary.heal)

    # Later the new leader 1 genuinely crashes; 3 notices.
    world.inject_crash(1, at=40.0)
    world.inject_suspicion(3, 1, at=42.0)

    world.run_to_quiescence()
    history = ensure_crashes(world.history())

    describe(history, "raw run (outside observer's view)")
    witness = fail_stop_witness(history)
    describe(witness, "Theorem 5 witness (what the processes experienced)")

    final_leader = next(
        p for p in world.processes if not p.crashed and p.believes_leader()
    )
    print(f"\nfinal leader: process {final_leader.pid}")


if __name__ == "__main__":
    main()
