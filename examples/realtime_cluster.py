#!/usr/bin/env python3
"""The echo protocol on wall-clock asyncio with phi-accrual detection.

Runs a real (in-process) cluster for a couple of seconds: nodes exchange
heartbeats, a phi-accrual monitor turns silence into suspicion, and the
Section 5 protocol turns suspicion into simulated-fail-stop detections.
One node genuinely crashes mid-run; the recorded history is judged by the
same formal checkers as the discrete-event simulator's.

Run:  python examples/realtime_cluster.py   (takes ~2 seconds)
"""

from repro.analysis import analyze
from repro.runtime import run_cluster


def main() -> None:
    print("starting 5-node asyncio cluster (heartbeat 40ms, phi=6.0)...")
    result = run_cluster(
        n=5,
        duration=1.6,
        t=1,
        crash_at={2: 0.4},
        heartbeat_interval=0.04,
        phi_threshold=6.0,
    )
    print(f"ran {result.duration:.2f}s wall clock, "
          f"{len(result.history)} modelled events")
    print(f"crashed: {sorted(result.crashed)} "
          f"(false suspicions: {sorted(result.false_suspicion_targets)})")
    for node, detected in sorted(result.detected.items()):
        print(f"  node {node} detected: {sorted(detected)}")

    report = analyze(
        result.history, result.quorum_records, t=1, pending_ok=True
    )
    print("\n--- formal verdict on the wall-clock run ---")
    print(f"simulated fail-stop (FS1 ^ sFS2a-d): "
          f"{report.is_simulated_fail_stop}")
    print(f"indistinguishable from fail-stop:    "
          f"{report.indistinguishable_from_fail_stop}")


if __name__ == "__main__":
    main()
