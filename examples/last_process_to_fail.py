#!/usr/bin/env python3
"""Skeen's 'determining the last process to fail' under two failure models.

Section 6's sensitivity case: recovery from total failure needs the
failed-before relation to be acyclic. We stage the same kind of total
failure twice:

* under the **simulated fail-stop** protocol, the pooled failure logs
  name the correct last process (validated against the Theorem 5 witness
  crash order);
* under the **cheap unilateral** model, one concurrent mutual suspicion
  poisons the logs with a cycle — recovery cannot name anyone, and the
  paper's prescription applies: wait for *everyone* to come back.

Run:  python examples/last_process_to_fail.py
"""

from repro.apps.last_to_fail import (
    collect_logs,
    recover_last_to_fail,
    simulated_crash_order,
    verdict_is_correct,
)
from repro.core import ensure_crashes
from repro.protocols import SfsProcess, UnilateralProcess
from repro.sim import UniformDelay, build_world


def stage_total_failure(protocol: str, seed: int = 17):
    if protocol == "sfs":
        factory = lambda: SfsProcess(t=4, enforce_bounds=False, quorum_size=2)
    else:
        factory = lambda: UnilateralProcess()
    world = build_world(5, factory, UniformDelay(0.2, 0.8), seed=seed)
    if protocol == "unilateral":
        # The poison: 0 and 1 suspect each other at the same instant.
        world.inject_suspicion(0, 1, at=0.9)
        world.inject_suspicion(1, 0, at=0.9)
    # The rest of the system goes down one by one, observed by process 4,
    # which finally crashes on its own - a total failure.
    at = 1.0
    for victim in (3, 1, 0, 2):
        world.inject_suspicion(4, victim, at=at)
        at += 5.0
    world.inject_crash(4, at=at + 3.0)
    world.run_to_quiescence()
    return ensure_crashes(world.history())


def report(protocol: str) -> None:
    history = stage_total_failure(protocol)
    print(f"\n=== {protocol} protocol ===")
    print("pooled failure logs (owner: detected, in order):")
    for log in collect_logs(history):
        if log.entries:
            print(f"  process {log.owner}: {list(log.entries)}")
    verdict = recover_last_to_fail(history)
    if verdict.solvable:
        print(f"recovery answer: last to fail in {sorted(verdict.candidates)}")
        order = simulated_crash_order(history)
        print(f"simulated crash order (witness): {order}")
        print(f"answer correct: {verdict_is_correct(history)}")
    else:
        print("recovery IMPOSSIBLE:")
        if verdict.cycle:
            rendered = ", ".join(
                f"{i} failed-before {j}" for i, j in verdict.cycle
            )
            print(f"  failed-before cycle: {rendered}")
        print("  -> must wait for ALL crashed processes to recover")


def main() -> None:
    report("sfs")
    report("unilateral")


if __name__ == "__main__":
    main()
