"""Profile the event core on the standard E15 fuzz workload.

Two jobs, one harness:

* **Profile mode** (default): run the workload once under :mod:`cProfile`
  and print a ranked hot-function table — the view every hot-path PR
  should quote before/after::

      PYTHONPATH=src python tools/profile_core.py
      PYTHONPATH=src python tools/profile_core.py --top 25

* **Check mode** (``--check``): time the workload *without* the profiler
  (best-of-N, min wall time) and compare its events/sec against the
  committed baseline at ``benchmarks/results/BENCH_profile_core.json``.
  A throughput drop beyond ``--tolerance`` (default 30%) exits non-zero,
  so CI catches an accidental deoptimization of the event core. Noisy
  shared runners can demote the failure to a warning by setting
  ``PERF_SMOKE_WARN_ONLY=1``. Re-pin the baseline (after an intentional
  perf change, on the machine of record) with ``--update-baseline``.

The workload is the E15 fuzz batch (``run_fuzz(seed=0, count=80)``) —
80 deterministic scenarios across every protocol, exercising scheduler,
network, history recording, monitors, and detectors together. Its digest
is pinned by ``tests/analysis/test_fuzz.py``, so the thing being timed
here is the thing being checked for bit-identical behaviour there.
"""

from __future__ import annotations

import argparse
import cProfile
import io
import json
import os
import pstats
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
BASELINE_PATH = (
    REPO_ROOT / "benchmarks" / "results" / "BENCH_profile_core.json"
)

sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.analysis.fuzz import run_fuzz  # noqa: E402


def _workload(seed: int, count: int):
    return run_fuzz(seed=seed, count=count)


def time_workload(seed: int, count: int, repeats: int) -> tuple[float, int]:
    """Best-of-``repeats`` wall time and the (deterministic) event count."""
    best = float("inf")
    events = 0
    for _ in range(repeats):
        start = time.perf_counter()
        report = _workload(seed, count)
        elapsed = time.perf_counter() - start
        events = report.events
        if elapsed < best:
            best = elapsed
    return best, events


def profile_workload(seed: int, count: int, top: int) -> str:
    profiler = cProfile.Profile()
    profiler.enable()
    _workload(seed, count)
    profiler.disable()
    out = io.StringIO()
    stats = pstats.Stats(profiler, stream=out)
    stats.sort_stats("tottime")
    stats.print_stats(top)
    return out.getvalue()


def run_check(args: argparse.Namespace) -> int:
    best, events = time_workload(args.seed, args.count, args.repeats)
    rate = events / best
    print(
        f"workload: run_fuzz(seed={args.seed}, count={args.count})  "
        f"events={events}  best={best:.3f}s  rate={rate:,.0f} events/s"
    )
    if args.update_baseline:
        BASELINE_PATH.parent.mkdir(parents=True, exist_ok=True)
        BASELINE_PATH.write_text(
            json.dumps(
                {
                    "workload": {"seed": args.seed, "count": args.count},
                    "events": events,
                    "best_s": round(best, 6),
                    "events_per_sec": round(rate, 1),
                },
                indent=2,
                sort_keys=True,
            )
            + "\n"
        )
        print(f"baseline written to {BASELINE_PATH}")
        return 0
    if not BASELINE_PATH.exists():
        print(
            f"no baseline at {BASELINE_PATH}; run with --update-baseline "
            "to pin one",
            file=sys.stderr,
        )
        return 1
    baseline = json.loads(BASELINE_PATH.read_text())
    base_rate = baseline["events_per_sec"]
    if baseline.get("events") not in (None, events):
        # The workload itself changed (different event count): rates are
        # no longer comparable and the pin must be refreshed on purpose.
        print(
            f"baseline event count {baseline['events']} != measured "
            f"{events}; the workload changed — re-pin with "
            "--update-baseline",
            file=sys.stderr,
        )
        return 1
    floor = base_rate * (1.0 - args.tolerance)
    verdict = (
        f"baseline {base_rate:,.0f} events/s, floor {floor:,.0f} "
        f"(-{args.tolerance:.0%}), measured {rate:,.0f}"
    )
    if rate >= floor:
        print(f"OK: {verdict}")
        return 0
    message = f"REGRESSION: {verdict}"
    if os.environ.get("PERF_SMOKE_WARN_ONLY"):
        print(f"warning (PERF_SMOKE_WARN_ONLY set): {message}")
        return 0
    print(message, file=sys.stderr)
    return 1


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--count", type=int, default=80)
    parser.add_argument(
        "--top", type=int, default=20, help="rows in the hot-function table"
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="timing repeats (best is kept) in --check mode",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.30,
        help="allowed fractional events/sec drop before --check fails",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="compare events/sec against the committed baseline",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="re-pin the committed baseline from this machine",
    )
    args = parser.parse_args(argv)

    if args.check or args.update_baseline:
        return run_check(args)

    best, events = time_workload(args.seed, args.count, 1)
    print(
        f"workload: run_fuzz(seed={args.seed}, count={args.count})  "
        f"events={events}  warm-up={best:.3f}s  "
        f"rate={events / best:,.0f} events/s"
    )
    print(profile_workload(args.seed, args.count, args.top))
    return 0


if __name__ == "__main__":
    sys.exit(main())
