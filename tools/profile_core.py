"""Profile the event core on the standard E15 fuzz workload.

Two jobs, one harness:

* **Profile mode** (default): run the workload once under :mod:`cProfile`
  and print a ranked hot-function table — the view every hot-path PR
  should quote before/after::

      PYTHONPATH=src python tools/profile_core.py
      PYTHONPATH=src python tools/profile_core.py --top 25

* **Check mode** (``--check``): time the workload *without* the profiler
  (best-of-N, min wall time) and compare its events/sec against the
  committed baseline at ``benchmarks/results/BENCH_profile_core.json``.
  A throughput drop beyond ``--tolerance`` (default 30%) exits non-zero,
  so CI catches an accidental deoptimization of the event core. Noisy
  shared runners can demote the failure to a warning by setting
  ``PERF_SMOKE_WARN_ONLY=1``. Re-pin the baseline (after an intentional
  perf change, on the machine of record) with ``--update-baseline``.

  The baseline is stamped with the event core (``pure``/``accel``) and
  Python version that produced it; a check run under a different
  configuration refuses the comparison (the rates measure different
  code) instead of reporting a phantom regression or improvement.

* **A/B mode** (``--ab``): time the workload under *both* cores (each in
  a subprocess with ``REPRO_CORE`` forced) and print the speedup — the
  number the compiled-core PRs quote::

      PYTHONPATH=src python tools/profile_core.py --ab

The workload is the E15 fuzz batch (``run_fuzz(seed=0, count=80)``) —
80 deterministic scenarios across every protocol, exercising scheduler,
network, history recording, monitors, and detectors together. Its digest
is pinned by ``tests/analysis/test_fuzz.py``, so the thing being timed
here is the thing being checked for bit-identical behaviour there.
"""

from __future__ import annotations

import argparse
import cProfile
import io
import json
import os
import pstats
import subprocess
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
BASELINE_PATH = (
    REPO_ROOT / "benchmarks" / "results" / "BENCH_profile_core.json"
)

sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.analysis.fuzz import run_fuzz  # noqa: E402


def core_tags() -> dict:
    """The configuration tags a throughput number is only valid under."""
    from repro import _core

    return {
        "core": _core.ACTIVE_IMPL,
        "python": f"{sys.version_info.major}.{sys.version_info.minor}",
    }


def _workload(seed: int, count: int):
    return run_fuzz(seed=seed, count=count)


def time_workload(seed: int, count: int, repeats: int) -> tuple[float, int]:
    """Best-of-``repeats`` wall time and the (deterministic) event count."""
    best = float("inf")
    events = 0
    for _ in range(repeats):
        start = time.perf_counter()
        report = _workload(seed, count)
        elapsed = time.perf_counter() - start
        events = report.events
        if elapsed < best:
            best = elapsed
    return best, events


def profile_workload(seed: int, count: int, top: int) -> str:
    profiler = cProfile.Profile()
    profiler.enable()
    _workload(seed, count)
    profiler.disable()
    out = io.StringIO()
    stats = pstats.Stats(profiler, stream=out)
    stats.sort_stats("tottime")
    stats.print_stats(top)
    return out.getvalue()


def run_check(args: argparse.Namespace) -> int:
    tags = core_tags()
    best, events = time_workload(args.seed, args.count, args.repeats)
    rate = events / best
    print(
        f"workload: run_fuzz(seed={args.seed}, count={args.count})  "
        f"core={tags['core']}  events={events}  best={best:.3f}s  "
        f"rate={rate:,.0f} events/s"
    )
    if args.update_baseline:
        BASELINE_PATH.parent.mkdir(parents=True, exist_ok=True)
        BASELINE_PATH.write_text(
            json.dumps(
                {
                    "workload": {"seed": args.seed, "count": args.count},
                    "events": events,
                    "best_s": round(best, 6),
                    "events_per_sec": round(rate, 1),
                    **tags,
                },
                indent=2,
                sort_keys=True,
            )
            + "\n"
        )
        print(f"baseline written to {BASELINE_PATH}")
        return 0
    if not BASELINE_PATH.exists():
        print(
            f"no baseline at {BASELINE_PATH}; run with --update-baseline "
            "to pin one",
            file=sys.stderr,
        )
        return 1
    baseline = json.loads(BASELINE_PATH.read_text())
    base_rate = baseline["events_per_sec"]
    for key in ("core", "python"):
        pinned = baseline.get(key)
        if pinned is not None and pinned != tags[key]:
            # Different core or interpreter = different code under the
            # stopwatch; comparing would report phantom drift.
            print(
                f"baseline was pinned under {key}={pinned} but this run "
                f"has {key}={tags[key]}; not comparable — match the "
                "configuration or re-pin with --update-baseline",
                file=sys.stderr,
            )
            return 1
    if baseline.get("events") not in (None, events):
        # The workload itself changed (different event count): rates are
        # no longer comparable and the pin must be refreshed on purpose.
        print(
            f"baseline event count {baseline['events']} != measured "
            f"{events}; the workload changed — re-pin with "
            "--update-baseline",
            file=sys.stderr,
        )
        return 1
    floor = base_rate * (1.0 - args.tolerance)
    verdict = (
        f"baseline {base_rate:,.0f} events/s, floor {floor:,.0f} "
        f"(-{args.tolerance:.0%}), measured {rate:,.0f}"
    )
    if rate >= floor:
        print(f"OK: {verdict}")
        return 0
    message = f"REGRESSION: {verdict}"
    if os.environ.get("PERF_SMOKE_WARN_ONLY"):
        print(f"warning (PERF_SMOKE_WARN_ONLY set): {message}")
        return 0
    print(message, file=sys.stderr)
    return 1


def run_ab(args: argparse.Namespace) -> int:
    """Time the workload under both cores and print the speedup."""
    results: dict[str, dict] = {}
    for core in ("pure", "accel"):
        env = dict(os.environ, REPRO_CORE=core)
        proc = subprocess.run(
            [
                sys.executable,
                str(Path(__file__).resolve()),
                "--time-json",
                "--seed", str(args.seed),
                "--count", str(args.count),
                "--repeats", str(args.repeats),
            ],
            env=env,
            capture_output=True,
            text=True,
        )
        if proc.returncode != 0:
            reason = (
                proc.stderr.strip().splitlines()[-1]
                if proc.stderr.strip()
                else "unknown error"
            )
            print(f"{core:>5}: unavailable ({reason})")
            continue
        record = json.loads(proc.stdout)
        results[core] = record
        print(
            f"{core:>5}: events={record['events']}  "
            f"best={record['best_s']:.3f}s  "
            f"rate={record['events_per_sec']:,.0f} events/s"
        )
    if "pure" not in results or "accel" not in results:
        print("A/B incomplete: need both cores importable", file=sys.stderr)
        return 1
    if results["pure"]["events"] != results["accel"]["events"]:
        print(
            "event counts differ between cores — the cores diverged, "
            "which the digest tests should have caught",
            file=sys.stderr,
        )
        return 1
    ratio = (
        results["accel"]["events_per_sec"]
        / results["pure"]["events_per_sec"]
    )
    print(f"speedup: accel is {ratio:.2f}x pure")
    return 0


def run_time_json(args: argparse.Namespace) -> int:
    """Machine-readable timing record (the --ab subprocess body)."""
    best, events = time_workload(args.seed, args.count, args.repeats)
    json.dump(
        {
            "events": events,
            "best_s": best,
            "events_per_sec": events / best,
            **core_tags(),
        },
        sys.stdout,
    )
    print()
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--count", type=int, default=80)
    parser.add_argument(
        "--top", type=int, default=20, help="rows in the hot-function table"
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="timing repeats (best is kept) in --check mode",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.30,
        help="allowed fractional events/sec drop before --check fails",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="compare events/sec against the committed baseline",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="re-pin the committed baseline from this machine",
    )
    parser.add_argument(
        "--ab",
        action="store_true",
        help="time the workload under both event cores (REPRO_CORE "
        "subprocesses) and print the accel/pure speedup",
    )
    parser.add_argument(
        "--time-json",
        action="store_true",
        help=argparse.SUPPRESS,  # internal: --ab subprocess body
    )
    args = parser.parse_args(argv)

    if args.time_json:
        return run_time_json(args)
    if args.ab:
        return run_ab(args)
    if args.check or args.update_baseline:
        return run_check(args)

    best, events = time_workload(args.seed, args.count, 1)
    print(
        f"workload: run_fuzz(seed={args.seed}, count={args.count})  "
        f"events={events}  warm-up={best:.3f}s  "
        f"rate={events / best:,.0f} events/s"
    )
    print(profile_workload(args.seed, args.count, args.top))
    return 0


if __name__ == "__main__":
    sys.exit(main())
