#!/usr/bin/env python
"""CI smoke: multi-host dispatch with a worker killed mid-partition.

Runs a fixed-seed fuzz plan twice:

1. single-host, the reference digest;
2. on the remote backend with three spawned workers, SIGKILLing one of
   them after the second result lands — mid-partition, with jobs
   provably unfinished (the scenario sizes are chosen so each job takes
   tens of milliseconds).

The coordinator must detect the kill with the repo's own heartbeat
detector (the suspicion shows up in the detector's log, attributed to
the COORDINATOR observer), reassign the dead worker's unfinished share
to the survivors, and still produce a report digest byte-identical to
the single-host run. Exits non-zero on any miss.

Usage: PYTHONPATH=src python tools/remote_smoke.py
"""

import sys

from repro.analysis.fuzz import FuzzConfig, FuzzReport, scenario_job
from repro.exec import run_jobs
from repro.exec.remote import RemoteExecutor

SEED = 0
COUNT = 18
# Larger-than-default worlds so each scenario takes long enough that the
# kill below lands while the victim still has unfinished jobs.
CONFIG = FuzzConfig(min_n=16, max_n=24)


def main() -> int:
    jobs = [scenario_job(SEED, i, CONFIG) for i in range(COUNT)]

    single = FuzzReport(
        seed=SEED, count=COUNT, outcomes=tuple(run_jobs(jobs))
    )
    print(f"single-host digest: {single.digest()}")

    killed = []

    def kill_one(executor: RemoteExecutor, n_done: int) -> None:
        if n_done == 2 and not killed:
            victim = executor.processes[0]
            victim.kill()
            killed.append(victim.pid)
            print(f"killed worker pid={victim.pid} after {n_done} results")

    executor = RemoteExecutor(
        spawn=3,
        heartbeat_interval=0.1,
        timeout=1.0,
        chaos=kill_one,
    )
    remote = FuzzReport(
        seed=SEED,
        count=COUNT,
        outcomes=tuple(run_jobs(jobs, executor=executor)),
    )
    stats = executor.stats
    print(f"remote digest:      {remote.digest()}")
    print(
        f"workers={stats.workers} failed={stats.failed} "
        f"reassigned={stats.reassigned} duplicates={stats.duplicates}"
    )

    failures = []
    if not killed:
        failures.append("chaos hook never fired — no worker was killed")
    if len(stats.failed) != 1:
        failures.append(
            f"expected exactly one failed worker, got {stats.failed}"
        )
    if stats.reassigned == 0:
        failures.append("no jobs were reassigned after the kill")
    if not executor.monitor or not executor.monitor.suspicions:
        failures.append("the failure detector logged no suspicion")
    if remote.digest() != single.digest():
        failures.append(
            "digest mismatch: remote run with a killed worker diverged "
            "from the single-host run"
        )
    for failure in failures:
        print(f"SMOKE FAILURE: {failure}", file=sys.stderr)
    if not failures:
        print(
            "OK: worker failure detected by the heartbeat detector, "
            "share reassigned, digest bit-identical"
        )
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
