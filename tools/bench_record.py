"""Render the recorded bench artifacts under ``benchmarks/results/``.

Every benchmark session writes one ``BENCH_<experiment>.json`` per bench
module (see ``benchmarks/conftest.py``); this prints them as a compact
table so a perf regression can be eyeballed without re-running anything:

    python tools/bench_record.py            # all recorded modules
    python tools/bench_record.py e18        # only BENCH_e18*.json
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

RESULTS_DIR = Path(__file__).resolve().parent.parent / "benchmarks" / "results"


def render(path: Path) -> str:
    payload = json.loads(path.read_text())
    tags = "".join(
        f" {key}={payload[key]}"
        for key in ("core", "python")
        if key in payload
    )
    lines = [f"== {payload['module']} ({path.name}){tags} =="]
    for record in payload["benchmarks"]:
        lines.append(
            f"  {record['name']:<48} "
            f"mean {record['mean_s'] * 1000:9.1f} ms  "
            f"min {record['min_s'] * 1000:9.1f} ms  "
            f"rounds {record['rounds']}"
        )
        for row in record.get("extra_info", {}).get("rows", []):
            lines.append(f"      {row}")
    return "\n".join(lines)


def main(argv: list[str]) -> int:
    pattern = f"BENCH_{argv[0]}*.json" if argv else "BENCH_*.json"
    paths = sorted(RESULTS_DIR.glob(pattern))
    if not paths:
        print(
            f"no artifacts matching {pattern} under {RESULTS_DIR} — "
            "run the benchmarks first (PYTHONPATH=src python -m pytest "
            "benchmarks/bench_<name>.py -q)",
            file=sys.stderr,
        )
        return 1
    print("\n\n".join(render(path) for path in paths))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
