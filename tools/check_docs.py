#!/usr/bin/env python3
"""Documentation health checks (run by the CI ``docs`` job).

Two checks, stdlib only:

1. **Link resolution** — every relative markdown link in ``README.md`` and
   ``docs/*.md`` must point at a file or directory that exists (external
   ``http(s)``/``mailto`` targets and pure ``#anchors`` are skipped; a
   ``path#anchor`` target is checked for the path part).
2. **Example imports** — every ``examples/*.py`` must import cleanly with
   ``src`` on the path. All examples are ``__main__``-guarded, so importing
   runs no scenario; this catches bit-rotted imports the moment an API
   moves.

Exit status 0 when everything passes; 1 with a per-problem report
otherwise. Run from anywhere: paths resolve relative to the repo root.

Usage::

    python tools/check_docs.py
"""

from __future__ import annotations

import os
import re
import subprocess
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

# [text](target) — excluding images' leading "!" is unnecessary: image
# targets must resolve too. Inline code spans are stripped first.
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_CODE_SPAN = re.compile(r"`[^`]*`")
_FENCE = re.compile(r"^(```|~~~)")


def doc_files() -> list[str]:
    """README.md plus every markdown file under docs/, repo-relative."""
    files = []
    readme = os.path.join(REPO_ROOT, "README.md")
    if os.path.exists(readme):
        files.append(readme)
    docs_dir = os.path.join(REPO_ROOT, "docs")
    if os.path.isdir(docs_dir):
        for name in sorted(os.listdir(docs_dir)):
            if name.endswith(".md"):
                files.append(os.path.join(docs_dir, name))
    return files


def check_links(path: str) -> list[str]:
    """Problems for every unresolvable relative link in one markdown file."""
    problems = []
    in_fence = False
    with open(path, encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            if _FENCE.match(line.strip()):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            for target in _LINK.findall(_CODE_SPAN.sub("", line)):
                if target.startswith(("http://", "https://", "mailto:", "#")):
                    continue
                resolved = os.path.normpath(
                    os.path.join(os.path.dirname(path), target.split("#", 1)[0])
                )
                if not os.path.exists(resolved):
                    rel = os.path.relpath(path, REPO_ROOT)
                    problems.append(
                        f"{rel}:{lineno}: broken link -> {target}"
                    )
    return problems


def check_examples() -> list[str]:
    """Problems for every example module that fails to import."""
    problems = []
    examples_dir = os.path.join(REPO_ROOT, "examples")
    if not os.path.isdir(examples_dir):
        return ["examples/ directory is missing"]
    env = dict(os.environ)
    src = os.path.join(REPO_ROOT, "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    for name in sorted(os.listdir(examples_dir)):
        if not name.endswith(".py"):
            continue
        module_path = os.path.join(examples_dir, name)
        script = (
            "import importlib.util, sys; "
            f"spec = importlib.util.spec_from_file_location("
            f"{name[:-3]!r}, {module_path!r}); "
            "module = importlib.util.module_from_spec(spec); "
            "spec.loader.exec_module(module)"
        )
        result = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            env=env,
            cwd=REPO_ROOT,
        )
        if result.returncode != 0:
            tail = result.stderr.strip().splitlines()[-1:]
            problems.append(
                f"examples/{name}: import failed"
                + (f" ({tail[0]})" if tail else "")
            )
    return problems


def main() -> int:
    problems: list[str] = []
    files = doc_files()
    if not any(f.endswith("README.md") for f in files):
        problems.append("README.md is missing")
    for path in files:
        problems.extend(check_links(path))
    problems.extend(check_examples())
    if problems:
        print(f"docs check: {len(problems)} problem(s)")
        for problem in problems:
            print(f"  ! {problem}")
        return 1
    checked = ", ".join(os.path.relpath(f, REPO_ROOT) for f in files)
    print(f"docs check: OK ({checked}; all examples import)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
