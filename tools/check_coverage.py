"""Per-package coverage floors on top of the global ratchet.

The global ``--cov-fail-under`` ratchet can mask a poorly-tested package
behind a well-tested rest of the tree. This check reads the
``coverage.json`` report (``pytest --cov=repro --cov-report=json``) and
enforces an aggregate statement-coverage floor per configured subtree —
currently ``repro.analysis.*``, the fuzzing/shrinking/coverage layer
whose own tests are the point of PR 7.

Like the global number, these floors are RATCHETS: raise them when
coverage grows, never lower them.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

# package path fragment -> minimum aggregate percent of statements covered
FLOORS = {
    "repro/analysis/": 75.0,
}


def main(argv: list[str]) -> int:
    path = Path(argv[0]) if argv else Path("coverage.json")
    if not path.exists():
        print(
            f"coverage report {path} not found — run "
            "pytest --cov=repro --cov-report=json first",
            file=sys.stderr,
        )
        return 2
    files = json.loads(path.read_text())["files"]
    failed = False
    for prefix, floor in sorted(FLOORS.items()):
        statements = covered = 0
        for filename, info in sorted(files.items()):
            if prefix not in filename.replace("\\", "/"):
                continue
            summary = info["summary"]
            statements += summary["num_statements"]
            covered += summary["covered_lines"]
        if not statements:
            print(f"{prefix}: no measured files — wrong --cov target?",
                  file=sys.stderr)
            failed = True
            continue
        percent = 100.0 * covered / statements
        verdict = "ok" if percent >= floor else "BELOW FLOOR"
        print(f"{prefix}: {percent:.1f}% of {statements} statements "
              f"(floor {floor:.0f}%) {verdict}")
        if percent < floor:
            failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
