"""E9 — Section 1 election: split-brain in the raw run, never in the witness.

Regenerates the internal-indistinguishability demonstration: the adversary
shields a falsely-suspected leader so the raw run transiently holds two
self-believed leaders, yet the Theorem 5 FS-witness of the *same* run —
the execution every process actually experienced — never does. Shape to
hold: raw split-brain in every shielded run; witness max one leader,
always.
"""

from repro.analysis.experiments import run_e9
from repro.analysis.report import print_table

from conftest import attach_rows

SEEDS = tuple(range(25))


def test_e9_split_brain(benchmark):
    row = benchmark.pedantic(
        lambda: run_e9(n=6, seeds=SEEDS), rounds=1, iterations=1
    )
    print_table(
        "E9  Election: concurrent leaders, raw run vs Theorem 5 witness",
        [row],
    )
    attach_rows(benchmark, row)
    assert row.raw_runs_with_two_leaders == row.runs
    assert row.witness_runs_with_two_leaders == 0
    assert row.max_raw_leaders == 2
    assert row.max_witness_leaders <= 1
