"""Shared helpers for the benchmark suite.

Each benchmark module regenerates one experiment from DESIGN.md's
per-experiment index (E1-E10). The pattern: run the experiment driver once
under ``benchmark()`` for timing, print the paper-style table, and assert
the qualitative *shape* the paper claims (who wins, where the crossover
falls) so a regression in the reproduction fails the bench run loudly.
"""

from __future__ import annotations


def attach_rows(benchmark, rows, columns=None) -> None:
    """Stash result rows in the benchmark's extra_info for the report."""
    try:
        if isinstance(rows, (list, tuple)):
            benchmark.extra_info["rows"] = [str(r) for r in rows]
        else:
            benchmark.extra_info["rows"] = [str(rows)]
    except Exception:
        pass
