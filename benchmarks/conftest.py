"""Shared helpers for the benchmark suite.

Each benchmark module regenerates one experiment from DESIGN.md's
per-experiment index (E1-E10). The pattern: run the experiment driver once
under ``benchmark()`` for timing, print the paper-style table, and assert
the qualitative *shape* the paper claims (who wins, where the crossover
falls) so a regression in the reproduction fails the bench run loudly.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

RESULTS_DIR = Path(__file__).resolve().parent / "results"


def _core_tags() -> dict:
    """Which event core (and interpreter) produced these numbers."""
    try:
        from repro import _core

        core = _core.ACTIVE_IMPL
    except Exception:
        core = "unknown"
    return {
        "core": core,
        "python": f"{sys.version_info.major}.{sys.version_info.minor}",
    }


def attach_rows(benchmark, rows, columns=None) -> None:
    """Stash result rows in the benchmark's extra_info for the report."""
    try:
        if isinstance(rows, (list, tuple)):
            benchmark.extra_info["rows"] = [str(r) for r in rows]
        else:
            benchmark.extra_info["rows"] = [str(rows)]
    except Exception:
        pass


def pytest_sessionfinish(session, exitstatus) -> None:
    """Persist machine-readable bench artifacts per benchmark module.

    Every bench run rewrites ``results/BENCH_<experiment>.json`` with the
    timing stats and attached result rows of each benchmark that ran, so
    perf history survives outside transient CI logs and future changes
    have numbers to diff against. ``tools/bench_record.py`` renders them.
    The probing is deliberately defensive: ``_benchmarksession`` is
    pytest-benchmark internal API, and a missing attribute must never
    fail the bench run itself.
    """
    del exitstatus
    bench_session = getattr(session.config, "_benchmarksession", None)
    if bench_session is None or not getattr(
        bench_session, "benchmarks", None
    ):
        return
    by_module: dict[str, list[dict]] = {}
    for bench in bench_session.benchmarks:
        try:
            stats = bench.stats
            if not stats.rounds:
                continue
            record = {
                "name": bench.name,
                "rounds": stats.rounds,
                "min_s": stats.min,
                "mean_s": stats.mean,
                "stddev_s": stats.stddev,
                "extra_info": dict(bench.extra_info),
            }
        except Exception:
            continue
        module = Path(bench.fullname.split("::", 1)[0]).stem
        by_module.setdefault(module, []).append(record)
    if not by_module:
        return
    RESULTS_DIR.mkdir(exist_ok=True)
    for module, records in sorted(by_module.items()):
        stem = module.removeprefix("bench_")
        path = RESULTS_DIR / f"BENCH_{stem}.json"
        payload = {
            "module": module,
            "benchmarks": records,
            **_core_tags(),
        }
        path.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n"
        )
