"""E14 — streaming conformance monitors: overhead and early-stop payoff.

Guards the analyze-on-append PR. Three properties must hold:

1. **O(1) amortized per-event overhead** — attaching a full
   :class:`~repro.analysis.monitors.MonitorSet` to a
   ``HistoryBuilder`` recording costs a flat amount per event: the
   per-event overhead measured at 100k events is within a small factor
   of the overhead at 10k events (a linear-in-history monitor would be
   ~10x worse at the larger scale).

2. **Early-stop sweeps are faster** — on the violation-heavy E14
   adversary workload (failed-before cycle closes within the first ~100
   events of a multi-thousand-event run), ``early_stop`` sweeps abort at
   the violation and finish measurably faster than full-run sweeps, while
   reporting the *same* violating event index.

3. **Determinism survives both modes** — serial and parallel executors
   produce bit-identical rows (equal SHA-256 digest) with and without
   early stopping.
"""

import time

from repro.analysis.monitors import MonitorSet
from repro.analysis.sweep import rows_digest, run_sweep
from repro.core.history import HistoryBuilder

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from bench_e13_longrun import _event_stream  # noqa: E402 - shared generator
from conftest import attach_rows  # noqa: E402

N_PROCS = 8
SMALL = 10_000
LARGE = 100_000
# A linear-in-history monitor would be ~10x worse per event at LARGE;
# flat means "well under that". Generous bound for noisy CI runners.
FLATNESS_BOUND = 3.0
SWEEP_SEEDS = range(6)
SWEEP_N = 8


def _record(events, monitored: bool):
    builder = HistoryBuilder(N_PROCS)
    if monitored:
        builder.attach_observer(MonitorSet(N_PROCS).observe)
    start = time.perf_counter()
    for event in events:
        builder.append(event)
    return time.perf_counter() - start


def _per_event_overhead(count: int, seed: int) -> float:
    """Monitor overhead per event at the given scale (seconds/event)."""
    events = _event_stream(count, N_PROCS, seed=seed)
    bare = min(_record(events, monitored=False) for _ in range(2))
    monitored = min(_record(events, monitored=True) for _ in range(2))
    return max(monitored - bare, 1e-12) / count


def test_bench_monitor_overhead_is_flat(benchmark):
    """Per-event monitor cost at 100k events ~= cost at 10k events."""
    small = _per_event_overhead(SMALL, seed=13)
    large = _per_event_overhead(LARGE, seed=13)
    benchmark.pedantic(
        lambda: _record(
            _event_stream(SMALL, N_PROCS, seed=13), monitored=True
        ),
        rounds=1,
        iterations=1,
    )
    ratio = large / small
    attach_rows(
        benchmark,
        [
            f"per-event overhead: {SMALL} ev -> {small * 1e6:.2f}us, "
            f"{LARGE} ev -> {large * 1e6:.2f}us (ratio {ratio:.2f}, "
            f"bound {FLATNESS_BOUND})"
        ],
    )
    assert ratio < FLATNESS_BOUND, (
        f"monitor overhead grew {ratio:.2f}x from {SMALL} to {LARGE} "
        "events — per-event cost is no longer O(1) amortized"
    )


def test_bench_early_stop_sweep_speedup(benchmark):
    """Early-stop sweeps beat full sweeps on violation-heavy cases."""
    kwargs = dict(seeds=SWEEP_SEEDS, params={"n": SWEEP_N})

    start = time.perf_counter()
    full = run_sweep("e14", **kwargs)
    full_elapsed = time.perf_counter() - start

    start = time.perf_counter()
    early = benchmark.pedantic(
        lambda: run_sweep("e14", early_stop=True, **kwargs),
        rounds=1,
        iterations=1,
    )
    early_elapsed = time.perf_counter() - start

    # Same violations found at the same event indices, far fewer events.
    assert [r.row.violation_event_index for r in early] == [
        r.row.violation_event_index for r in full
    ]
    assert all(r.row.violated for r in early)
    full_events = sum(r.row.events_recorded for r in full)
    early_events = sum(r.row.events_recorded for r in early)
    assert early_events * 10 <= full_events, (
        f"early stop only trimmed {full_events} -> {early_events} events"
    )
    speedup = full_elapsed / max(early_elapsed, 1e-9)
    attach_rows(
        benchmark,
        [
            f"cases={len(full)} events full={full_events} "
            f"early={early_events} "
            f"wall full={full_elapsed:.3f}s early={early_elapsed:.3f}s "
            f"speedup={speedup:.1f}x"
        ],
    )
    assert early_elapsed < full_elapsed, (
        "early-stop sweep was not faster than the full sweep"
    )


def test_bench_digest_equality_both_modes(benchmark):
    """Serial == parallel rows, with and without early stopping."""
    kwargs = dict(seeds=SWEEP_SEEDS, params={"n": SWEEP_N})

    def both_modes():
        digests = {}
        for early_stop in (False, True):
            serial = run_sweep(
                "e14", jobs=1, early_stop=early_stop, **kwargs
            )
            parallel = run_sweep(
                "e14", jobs=2, early_stop=early_stop, **kwargs
            )
            assert serial == parallel
            digests[early_stop] = (
                rows_digest(serial),
                rows_digest(parallel),
            )
        return digests

    digests = benchmark.pedantic(both_modes, rounds=1, iterations=1)
    for early_stop, (serial_digest, parallel_digest) in digests.items():
        assert serial_digest == parallel_digest, (
            f"serial/parallel digest mismatch (early_stop={early_stop})"
        )
    # The two modes legitimately differ (rows carry the mode tag).
    assert digests[False][0] != digests[True][0]
    attach_rows(
        benchmark,
        [
            f"full digest={digests[False][0][:16]}... "
            f"early digest={digests[True][0][:16]}... "
            "serial==parallel in both modes"
        ],
    )
