"""E17 — the failure-model layer: churn throughput and adversary cost.

Not a paper table; this guards the PR that made the failure model
pluggable (fail-stop / crash-recovery / byzantine-crash). Three
properties must hold:

1. **fail-stop pays nothing**: the default model's fuzz campaign is
   bit-identical to the pre-refactor engine (digest-pinned in the test
   suite) and its bench run here must not be measurably slower than the
   crash-recovery/byzantine runs are *different* — i.e. the model hooks
   are dormant unless selected;
2. **churn is affordable**: a crash-recovery campaign with real
   crash→recover churn (incarnations, stable-storage reloads, YOLMT
   re-wrapping) stays within a small constant factor of the fail-stop
   baseline — recovery is bookkeeping, not a second simulation;
3. **the adversary is bounded**: byzantine-crash interference (drop /
   mutate / duplicate on every compromised send) costs per-message
   constant work, so its campaign also stays within a small factor.

Each campaign is run twice and digest-compared, so a nondeterministic
failure model fails the bench loudly before it ever reaches CI's fuzz
smoke.
"""

import dataclasses
import time

from repro.analysis.extensions import E17_MODELS, run_e17
from repro.analysis.fuzz import DEFAULT_CONFIG, run_fuzz

from conftest import attach_rows

FUZZ_COUNT = 40
SEEDS = tuple(range(10))

# Generous CI-jitter bound: a model campaign that takes this much longer
# than fail-stop means the hooks stopped being per-event-constant. The
# compiled event core (PR 10) accelerates the fail-stop denominator far
# more than the crash-recovery/byzantine campaigns — their extra cost is
# Python-side model bookkeeping (incarnations, stable-storage reloads,
# interference rolls) outside the compiled core — so the affordable
# *ratio* is correspondingly larger than it was when both sides were
# pure Python.
MODEL_OVERHEAD_LIMIT = 12.0


def _campaign(model: str):
    config = dataclasses.replace(DEFAULT_CONFIG, failure_model=model)
    return run_fuzz(seed=0, count=FUZZ_COUNT, config=config)


def _timed_campaign(model: str):
    start = time.perf_counter()
    report = _campaign(model)
    return report, time.perf_counter() - start


def test_bench_e17_decides_under_every_model(benchmark):
    """Ben-Or E17 sweep: every model decides every run, zero violations."""
    rows = benchmark.pedantic(
        lambda: run_e17(seeds=SEEDS), rounds=1, iterations=1
    )
    assert tuple(r.failure_model for r in rows) == E17_MODELS
    for row in rows:
        assert row.decided_runs == row.runs, row
        assert row.clean == row.runs, row
    by_model = {r.failure_model: r for r in rows}
    assert by_model["crash-recovery"].recoveries > 0
    assert by_model["byzantine-crash"].compromised > 0
    attach_rows(benchmark, rows)


def test_bench_recovery_churn_throughput(benchmark):
    """Crash-recovery fuzzing: clean, reproducible, near fail-stop cost."""
    _, fail_stop_s = _timed_campaign("fail-stop")

    report = benchmark.pedantic(
        lambda: _campaign("crash-recovery"), rounds=1, iterations=1
    )
    churn_s = benchmark.stats.stats.mean
    assert report.findings == ()
    assert report.digest() == _campaign("crash-recovery").digest()
    assert churn_s < fail_stop_s * MODEL_OVERHEAD_LIMIT, (
        churn_s, fail_stop_s
    )
    attach_rows(
        benchmark,
        [
            f"fail-stop   {FUZZ_COUNT} scenarios in {fail_stop_s:.3f}s",
            f"crash-rec   {FUZZ_COUNT} scenarios in {churn_s:.3f}s "
            f"({churn_s / fail_stop_s:.2f}x)",
        ],
    )


def test_bench_byzantine_adversary_overhead(benchmark):
    """Byzantine interference: clean, reproducible, bounded overhead."""
    _, fail_stop_s = _timed_campaign("fail-stop")

    report = benchmark.pedantic(
        lambda: _campaign("byzantine-crash"), rounds=1, iterations=1
    )
    byz_s = benchmark.stats.stats.mean
    assert report.findings == ()
    assert report.digest() == _campaign("byzantine-crash").digest()
    assert byz_s < fail_stop_s * MODEL_OVERHEAD_LIMIT, (byz_s, fail_stop_s)
    attach_rows(
        benchmark,
        [
            f"fail-stop   {FUZZ_COUNT} scenarios in {fail_stop_s:.3f}s",
            f"byzantine   {FUZZ_COUNT} scenarios in {byz_s:.3f}s "
            f"({byz_s / fail_stop_s:.2f}x)",
        ],
    )
