"""E13 — long-run scale: incremental history building, batched delivery.

Not a paper table; this guards the PR that scaled the engine for very long
runs (the regime where asymptotic detector behaviour lives). Three
properties must hold:

1. recording a 100k-event history through
   :class:`~repro.core.history.HistoryBuilder` is **>= 10x faster** than
   the rebuild-per-append baseline. The baseline is timed on a prefix
   (it is quadratic — running it at 100k outlasts any CI budget) and
   extrapolated *linearly*, which understates its true cost, so the
   asserted speedup is a conservative lower bound;
2. a builder snapshot is indistinguishable from a from-scratch
   ``History`` — same events, indices, vector clocks;
3. batched delivery collapses a backlogged channel's heap entries by
   >= 10x while delivering bit-identically to the per-message path.
"""

import random
import time

from repro.core.events import CrashEvent, FailedEvent, RecvEvent, SendEvent
from repro.core.history import History, HistoryBuilder
from repro.core.messages import MessageMint
from repro.sim.delays import ConstantDelay
from repro.sim.network import Network
from repro.sim.scheduler import Scheduler

from conftest import attach_rows

N_EVENTS = 100_000
BASELINE_PREFIX = 1_500
N_PROCS = 8
TARGET_SPEEDUP = 10.0
BACKLOG_MESSAGES = 20_000


def _event_stream(count: int, n_procs: int, seed: int) -> list:
    """A deterministic long-run mix: mostly send/recv, a few crash/failed."""
    rng = random.Random(seed)
    mints = [MessageMint(p) for p in range(n_procs)]
    in_flight: list[tuple[int, int, object]] = []
    alive = list(range(n_procs))
    events: list = []
    while len(events) < count:
        roll = rng.random()
        proc = rng.choice(alive)
        if roll < 0.495 or not in_flight:
            dst = rng.randrange(n_procs)
            msg = mints[proc].mint(len(events))
            in_flight.append((proc, dst, msg))
            events.append(SendEvent(proc, dst, msg))
        elif roll < 0.99:
            src, dst, msg = in_flight.pop(0)
            events.append(RecvEvent(dst, src, msg))
        elif roll < 0.995 and len(alive) > 2:
            victim = alive.pop()
            events.append(CrashEvent(victim))
            events.append(FailedEvent(alive[0], victim))
        else:
            events.append(FailedEvent(proc, rng.randrange(n_procs)))
    return events[:count]


def _record_incremental(events: list) -> History:
    builder = HistoryBuilder(N_PROCS)
    for event in events:
        builder.append(event)
    return builder.snapshot()


def _record_rebuild_per_append(events: list) -> History:
    """The pre-builder pattern: immutable append + index/vector rebuild."""
    history = History((), N_PROCS)
    for event in events:
        history = history.append(event)
        history.send_index  # noqa: B018 - forces the O(len) index rebuild
        history.vectors  # noqa: B018 - forces the O(len * procs) rebuild
    return history


def _timed(fn, *args):
    start = time.perf_counter()
    result = fn(*args)
    return time.perf_counter() - start, result


def test_bench_longrun_history_recording(benchmark):
    """HistoryBuilder at 100k events vs rebuild-per-append, >= 10x."""
    events = _event_stream(N_EVENTS, N_PROCS, seed=13)
    baseline_elapsed, _ = _timed(
        _record_rebuild_per_append, events[:BASELINE_PREFIX]
    )
    incremental_elapsed, history = _timed(_record_incremental, events)
    benchmark.pedantic(
        lambda: _record_incremental(events), rounds=1, iterations=1
    )
    # Linear extrapolation of a quadratic baseline: a deliberate
    # understatement, so the assertion can only be pessimistic.
    baseline_at_scale = baseline_elapsed * (N_EVENTS / BASELINE_PREFIX)
    speedup = baseline_at_scale / incremental_elapsed
    attach_rows(
        benchmark,
        [
            f"events={N_EVENTS} incremental={incremental_elapsed:.3f}s "
            f"baseline({BASELINE_PREFIX} ev)={baseline_elapsed:.3f}s "
            f"extrapolated={baseline_at_scale:.1f}s speedup>={speedup:.0f}x"
        ],
    )
    assert len(history) == N_EVENTS
    assert speedup >= TARGET_SPEEDUP
    # The snapshot's precomputed caches must match a from-scratch History
    # on a prefix small enough to build one (full equivalence is the
    # property suite's job; this is the smoke-level cross-check).
    reference = History(events[:BASELINE_PREFIX], N_PROCS)
    prefix = HistoryBuilder(N_PROCS, events[:BASELINE_PREFIX]).snapshot()
    assert prefix == reference
    assert prefix.vectors == reference.vectors
    assert prefix.send_index == reference.send_index


def test_bench_longrun_queries_stay_cheap(benchmark):
    """Index queries on a snapshot never trigger recomputation."""
    events = _event_stream(N_EVENTS, N_PROCS, seed=29)
    history = _record_incremental(events)

    def query():
        pairs = history.detected_pairs()
        crashed = history.crashed_processes()
        hb = history.happens_before(0, len(history) - 1)
        return pairs, crashed, hb

    elapsed, _ = _timed(query)
    benchmark.pedantic(query, rounds=1, iterations=1)
    # Pre-seeded caches: the whole battery is dict/list lookups.
    assert elapsed < 0.05


def _drain_backlog(batch: bool):
    scheduler = Scheduler()
    delivered = []
    network = Network(
        scheduler,
        4,
        ConstantDelay(1.0),
        random.Random(5),
        deliver=lambda src, dst, msg, kind: delivered.append(msg),
        batch=batch,
    )
    mint = MessageMint(0)
    for i in range(BACKLOG_MESSAGES):
        network.send(0, 1, mint.mint(i))
    scheduler.run()
    return network, delivered


def test_bench_batched_backlog_heap_pressure(benchmark):
    """A backlogged channel: >= 10x fewer heap entries, identical order."""
    network, delivered = benchmark.pedantic(
        lambda: _drain_backlog(batch=True), rounds=1, iterations=1
    )
    per_message_net, per_message = _drain_backlog(batch=False)
    assert delivered == per_message
    assert per_message_net.delivery_entries == BACKLOG_MESSAGES
    assert network.delivery_entries * TARGET_SPEEDUP <= BACKLOG_MESSAGES
    attach_rows(
        benchmark,
        [
            f"messages={BACKLOG_MESSAGES} "
            f"entries batched={network.delivery_entries} "
            f"per-message={per_message_net.delivery_entries}"
        ],
    )
