"""E7 — Section 6: the cheap unilateral model vs full sFS.

Regenerates the cycle-rate comparison on identical concurrent-mutual-
suspicion schedules: the broadcast-then-detect model (sFS2a,c,d but not
sFS2b) forms failed-before cycles and becomes *distinguishable* from
fail-stop; the Section 5 protocol never does. Shape to hold: cheap rate
positive (here: every run — the schedule is maximally hostile), sFS rate
exactly zero, distinguishability co-occurring with cycles.
"""

from repro.analysis.experiments import run_e7
from repro.analysis.report import print_table

from conftest import attach_rows

SEEDS = tuple(range(40))


def test_e7_cheap_vs_sfs(benchmark):
    rows = benchmark.pedantic(
        lambda: run_e7(n=6, seeds=SEEDS), rounds=1, iterations=1
    )
    print_table(
        "E7  Section 6: failed-before cycles, cheap model vs sFS "
        "(identical mutual-suspicion schedules)",
        rows,
    )
    attach_rows(benchmark, rows)
    cheap = next(r for r in rows if r.protocol == "unilateral")
    sfs = next(r for r in rows if r.protocol == "sfs")
    assert cheap.cycle_rate > 0.9
    assert sfs.cycle_rate == 0.0
    assert sfs.runs_distinguishable == 0
    assert cheap.runs_distinguishable == cheap.runs_with_cycle
