"""E3 — Theorem 6 / Appendix A.3: the adversarial k-cycle construction.

Regenerates the construction table: with quorums one below the Theorem 7
bound the shield adversary drives the generic one-round protocol into a
k-cycle of failure detections; at the legal minimum the same schedule
starves every detection. Shape to hold: cycle of length exactly k below
the bound, zero detections at it.
"""

from repro.analysis.experiments import run_e3
from repro.analysis.report import print_table

from conftest import attach_rows

KS = (2, 3, 4, 5)


def test_e3_cycle_construction(benchmark):
    rows = benchmark.pedantic(
        lambda: run_e3(ks=KS, multiplier=3), rounds=1, iterations=1
    )
    print_table(
        "E3  Theorem 6: adversarial k-cycle at / below the quorum bound",
        rows,
    )
    attach_rows(benchmark, rows)
    below = [row for row in rows if row.quorum_size < row.legal_quorum]
    at = [row for row in rows if row.quorum_size >= row.legal_quorum]
    assert all(row.cycle_formed and row.cycle_length == row.k for row in below)
    assert all(not row.cycle_formed and row.detections == 0 for row in at)
