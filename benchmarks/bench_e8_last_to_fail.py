"""E8 — [Ske85] via Section 6: last-process-to-fail recovery.

Regenerates the recovery scoreboard over staged total failures: pooled
failure logs name the correct last process under sFS in every run; under
the cheap model a poisoned (cyclic) log leaves recovery unsolvable —
"the only possible recovery is to always wait for all crashed processes
to recover". Shape to hold: sFS 100% correct; unilateral 100% unsolvable.
"""

from repro.analysis.experiments import run_e8
from repro.analysis.report import print_table

from conftest import attach_rows

SEEDS = tuple(range(25))


def test_e8_recovery(benchmark):
    rows = benchmark.pedantic(
        lambda: run_e8(n=5, seeds=SEEDS), rounds=1, iterations=1
    )
    print_table(
        "E8  Skeen recovery after total failure: sFS vs cheap model",
        rows,
    )
    attach_rows(benchmark, rows)
    sfs = next(r for r in rows if r.protocol == "sfs")
    cheap = next(r for r in rows if r.protocol == "unilateral")
    assert sfs.correct_rate == 1.0
    assert cheap.recoveries_unsolvable == cheap.runs
