"""E10 — phi-accrual: the FS1/FS2 trade-off as a threshold sweep.

Regenerates the accuracy/latency curve: raising the phi threshold cuts
false suspicions monotonically while detection delay of a genuine crash
rises — the quantitative version of why FS2 must be weakened to sFS2a-d.
Shape to hold: false suspicions non-increasing in the threshold; the
genuine crash detected at conservative thresholds.
"""

from repro.analysis.experiments import run_e10
from repro.analysis.report import print_table

from conftest import attach_rows

THRESHOLDS = (0.5, 1.0, 2.0, 4.0, 8.0)
SEEDS = tuple(range(8))


def test_e10_threshold_sweep(benchmark):
    rows = benchmark.pedantic(
        lambda: run_e10(thresholds=THRESHOLDS, seeds=SEEDS),
        rounds=1,
        iterations=1,
    )
    print_table(
        "E10  Phi-accrual detection: accuracy vs latency "
        "(log-normal delays, n=6, 1 genuine crash)",
        rows,
    )
    attach_rows(benchmark, rows)
    false_counts = [row.false_suspicions for row in rows]
    assert false_counts[0] >= false_counts[-1]
    assert rows[-1].crash_detected_runs >= len(SEEDS) - 1
    delays = [
        row.mean_detection_delay
        for row in rows
        if row.mean_detection_delay is not None
    ]
    assert all(delay >= 0 for delay in delays)
