"""E1 — Theorem 1: fixed timeouts cannot implement FS2 (perfect detection).

Regenerates the false-suspicion-vs-timeout table: under heavy-tailed
(Pareto) delays, every timeout factor produces false suspicions; raising
the factor lowers the rate but never structurally zeroes it, while the
genuine crash is still detected (FS1). Shape to hold: monotone decrease,
never zero.
"""

from repro.analysis.experiments import run_e1
from repro.analysis.report import print_table

from conftest import attach_rows

SEEDS = tuple(range(12))
FACTORS = (1.5, 2.0, 4.0, 8.0)


def test_e1_timeout_sweep(benchmark):
    rows = benchmark.pedantic(
        lambda: run_e1(seeds=SEEDS, timeout_factors=FACTORS),
        rounds=1,
        iterations=1,
    )
    print_table(
        "E1  Theorem 1: false suspicions vs timeout factor "
        "(Pareto delays, n=8, 1 genuine crash)",
        rows,
    )
    attach_rows(benchmark, rows)
    totals = [row.total_false_suspicions for row in rows]
    # Shape: aggressive timeouts misfire more; none reach zero.
    assert totals[0] >= totals[-1]
    assert all(total > 0 for total in totals)
