"""E16 — the unified execution layer: journal, resume, streaming, merge.

Not a paper table; this guards the PR that moved sweep, fuzz, and the
monitored CLI onto one job/executor core (``repro.exec``). Four
properties must hold:

1. **journaling is cheap**: checkpointing every completed case to the
   JSONL journal costs a small fraction of the run (the cases dominate;
   a pickle+flush per case does not);
2. **resume restores, never recomputes**: a run killed mid-way and
   resumed from its journal reproduces the uninterrupted digest while
   re-executing only the unjournaled cases — so the resumed remainder
   runs in roughly the remaining fraction of the time;
3. **streaming sinks are near-free**: attaching an in-order result sink
   does not measurably change the run (or its digest);
4. **partition + merge is lossless**: splitting a plan across simulated
   workers and digest-check-merging their journals reproduces the
   single-host result bit for bit — the seam the ROADMAP's multi-host
   dispatch backend will plug into.
"""

import time

from repro.analysis.fuzz import run_fuzz
from repro.analysis.sweep import (
    case_to_job,
    plan_cases,
    rows_digest,
    run_sweep,
)
from repro.exec import CollectSink, merge_journals, run_jobs

from conftest import attach_rows

SWEEP_SEEDS = 24
FUZZ_COUNT = 60


def test_bench_journal_overhead(benchmark, tmp_path):
    """Journaled vs plain sweep: same digest, small constant overhead."""
    kwargs = dict(seeds=range(SWEEP_SEEDS), params={"n": 6})
    start = time.perf_counter()
    plain = run_sweep("e7", **kwargs)
    plain_s = time.perf_counter() - start

    path = tmp_path / "sweep.jsonl"

    def journaled():
        return run_sweep("e7", journal=path, **kwargs)

    rows = benchmark.pedantic(journaled, rounds=1, iterations=1)
    journaled_s = benchmark.stats.stats.mean
    assert rows_digest(rows) == rows_digest(plain)
    # The journal must not dominate: allow generous CI jitter, but a
    # 2x run is a regression (a pickle+flush per case costs far less
    # than a simulated case).
    assert journaled_s < plain_s * 2.0, (journaled_s, plain_s)
    attach_rows(
        benchmark,
        [
            f"plain={plain_s * 1000:.1f}ms",
            f"journaled={journaled_s * 1000:.1f}ms",
            f"overhead={(journaled_s / plain_s - 1) * 100:+.1f}%",
            f"journal_bytes={path.stat().st_size}",
        ],
    )


def test_bench_resume_skips_completed_work(benchmark, tmp_path):
    """Truncate the journal mid-run; the resume redoes only the rest.

    Detector-driven scenarios run to a virtual-time horizon and cost an
    order of magnitude more than injected-fault ones, which would make
    the timing depend on *which* half got journaled; a detector-free
    space keeps per-scenario cost roughly uniform so the saving tracks
    the journaled fraction.
    """
    from repro.analysis.fuzz import FuzzConfig

    config = FuzzConfig(detectors=("none",))
    path = tmp_path / "fuzz.jsonl"
    start = time.perf_counter()
    full = run_fuzz(seed=0, count=FUZZ_COUNT, config=config, journal=path)
    full_s = time.perf_counter() - start

    lines = path.read_text().splitlines()
    keep = 1 + FUZZ_COUNT // 2  # header + half the results
    path.write_text("\n".join(lines[:keep]) + "\n")

    def resume():
        return run_fuzz(
            seed=0, count=FUZZ_COUNT, config=config,
            journal=path, resume=True,
        )

    resumed = benchmark.pedantic(resume, rounds=1, iterations=1)
    resume_s = benchmark.stats.stats.mean
    assert resumed == full
    assert resumed.digest() == full.digest()
    # Half the scenarios are restored from the journal, so the resume
    # must beat re-running everything (scenario cost dominates restore
    # cost by orders of magnitude; the bound is deliberately loose).
    assert resume_s < full_s, (resume_s, full_s)
    attach_rows(
        benchmark,
        [
            f"digest={full.digest()[:16]}",
            f"uninterrupted={full_s * 1000:.1f}ms",
            f"resumed_half={resume_s * 1000:.1f}ms",
            f"saved={(1 - resume_s / full_s) * 100:.0f}%",
        ],
    )


def test_bench_streaming_sink_overhead(benchmark):
    """An attached in-order sink must not change the run or its cost."""
    start = time.perf_counter()
    bare = run_fuzz(seed=1, count=FUZZ_COUNT)
    bare_s = time.perf_counter() - start

    def streamed():
        sink = CollectSink()
        report = run_fuzz(seed=1, count=FUZZ_COUNT, sink=sink)
        return report, sink

    (report, sink) = benchmark.pedantic(streamed, rounds=1, iterations=1)
    streamed_s = benchmark.stats.stats.mean
    assert report == bare
    assert sink.results == list(report.outcomes)
    assert streamed_s < bare_s * 2.0, (streamed_s, bare_s)
    attach_rows(
        benchmark,
        [
            f"bare={bare_s * 1000:.1f}ms",
            f"with_sink={streamed_s * 1000:.1f}ms",
            f"per_result_overhead="
            f"{(streamed_s - bare_s) / FUZZ_COUNT * 1e6:.1f}us",
        ],
    )


def test_bench_partition_merge_round_trip(benchmark, tmp_path):
    """Three simulated workers, one digest-checked merge, zero loss."""
    jobs = [
        case_to_job(case)
        for case in plan_cases("e7", range(SWEEP_SEEDS), {"n": 6})
    ]
    baseline = rows_digest(
        run_sweep("e7", seeds=range(SWEEP_SEEDS), params={"n": 6})
    )

    def fan_out_and_merge():
        paths = []
        for worker in range(3):
            path = tmp_path / f"worker{worker}.jsonl"
            run_jobs(jobs, journal=path, partition=(worker, 3))
            paths.append(path)
        return merge_journals(jobs, paths)

    merged = benchmark.pedantic(fan_out_and_merge, rounds=1, iterations=1)
    flat = [row for rows in merged for row in rows]
    assert rows_digest(flat) == baseline
    attach_rows(
        benchmark,
        [
            f"workers=3 cases={len(jobs)}",
            f"digest={baseline[:16]}",
            "merge=digest-checked, holes rejected",
        ],
    )
