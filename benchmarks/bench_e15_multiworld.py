"""E15 — the sharded multi-world engine and the scenario fuzzer.

Not a paper table; this guards the PR that added in-process multi-world
simulation. Four properties must hold:

1. the fuzzer sustains a healthy shard throughput (hundreds of generated
   scenarios per second on one core) and finds nothing on the default
   scenario space — a finding here is a real conformance or determinism
   bug, so it must fail the bench loudly;
2. the run is **deterministic**: the same seed/count reproduce the same
   report digest under different stepping policies;
3. the ``inproc`` sweep backend is bit-identical to ``serial`` and
   ``parallel`` and beats the subprocess pool on small sweeps (where
   process spawn/pickle overhead dominates) — the crossover table below
   shows where the pool starts paying;
4. scheduler storage pooling recycles entries across shards without
   perturbing results.
"""

import time

from repro.analysis.fuzz import run_fuzz
from repro.analysis.sweep import rows_digest, run_sweep
from repro.sim.multiworld import ShardedRunner

from conftest import attach_rows

FUZZ_COUNT = 80


def test_bench_fuzz_shard_throughput(benchmark):
    """Generated scenarios through the sharded engine, with monitors."""
    runner = ShardedRunner(stepping="round_robin", quantum=512, window=64)

    def run():
        return run_fuzz(seed=0, count=FUZZ_COUNT, runner=runner)

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    assert report.findings == (), report.findings
    assert report.count == FUZZ_COUNT
    attach_rows(
        benchmark,
        [
            f"digest={report.digest()[:16]}",
            f"events={report.events}",
            f"engine_events={runner.stats.events}",
            f"entries_reused={runner.stats.entries_reused}",
        ],
    )


def test_bench_fuzz_deterministic_across_stepping(benchmark):
    """Same seed, different stepping/quantum: byte-identical reports."""
    baseline = run_fuzz(seed=0, count=FUZZ_COUNT)

    def run_sequential():
        return run_fuzz(
            seed=0, count=FUZZ_COUNT,
            runner=ShardedRunner(stepping="sequential"),
        )

    sequential = benchmark.pedantic(run_sequential, rounds=1, iterations=1)
    assert sequential == baseline
    assert sequential.digest() == baseline.digest()
    attach_rows(benchmark, [f"digest={baseline.digest()[:16]}"])


def test_bench_inproc_vs_subprocess_crossover(benchmark):
    """Small sweeps: inproc wins (no spawn/pickle); all digests equal.

    The printed table shows serial / inproc / parallel wall time at two
    sweep sizes, bracketing the crossover where the subprocess pool's
    per-run overhead is finally amortised by its parallelism.
    """

    def timed(backend, seeds, jobs=1):
        start = time.perf_counter()
        rows = run_sweep(
            "e7", seeds=seeds, params={"n": 6}, backend=backend, jobs=jobs
        )
        return time.perf_counter() - start, rows_digest(rows)

    small = range(2)
    serial_t, serial_d = timed("serial", small)
    inproc_t, inproc_d = benchmark.pedantic(
        lambda: timed("inproc", small), rounds=1, iterations=1
    )
    parallel_t, parallel_d = timed("parallel", small, jobs=4)
    assert serial_d == inproc_d == parallel_d

    large = range(24)
    serial_lt, serial_ld = timed("serial", large)
    inproc_lt, inproc_ld = timed("inproc", large)
    parallel_lt, parallel_ld = timed("parallel", large, jobs=4)
    assert serial_ld == inproc_ld == parallel_ld

    rows = [
        f"small({len(small)} seeds): serial={serial_t:.3f}s "
        f"inproc={inproc_t:.3f}s parallel(j4)={parallel_t:.3f}s",
        f"large({len(large)} seeds): serial={serial_lt:.3f}s "
        f"inproc={inproc_lt:.3f}s parallel(j4)={parallel_lt:.3f}s",
    ]
    print("\n".join(rows))
    attach_rows(benchmark, rows)
    # The qualitative shape: on the small sweep the pool's spawn overhead
    # must dominate — inproc beats the subprocess backend outright.
    assert inproc_t < parallel_t


def test_bench_storage_pool_recycles_without_perturbing(benchmark):
    """Pooling on vs off: identical reports, nonzero recycling."""
    pooled_runner = ShardedRunner(stepping="sequential", reuse_storage=True)
    unpooled_runner = ShardedRunner(
        stepping="sequential", reuse_storage=False
    )
    config_kwargs = dict(seed=2, count=40)

    pooled = benchmark.pedantic(
        lambda: run_fuzz(runner=pooled_runner, **config_kwargs),
        rounds=1,
        iterations=1,
    )
    unpooled = run_fuzz(runner=unpooled_runner, **config_kwargs)
    assert pooled == unpooled
    assert pooled_runner.stats.entries_recycled > 0
    attach_rows(
        benchmark,
        [
            f"entries_recycled={pooled_runner.stats.entries_recycled}",
            f"entries_reused={pooled_runner.stats.entries_reused}",
        ],
    )
