"""E12 — engine scale: O(1) quiescence accounting and the sweep runner.

Not a paper table; this guards the PR that rearchitected the simulation
core. Three properties must hold:

1. a quiescence-driven run on a large (n=64) cluster is cheap — the
   scheduler's remaining-work check is an O(1) counter read, not a queue
   scan (the seed engine was quadratic in queue depth here);
2. cancelling a crashed process's far-future timers compacts the heap
   eagerly instead of leaving the entries to rot until their due times;
3. the multi-seed sweep runner produces **bit-identical** rows serially
   and on a process pool, so parallelism is free determinism-wise.
"""

from repro.analysis.sweep import rows_digest, run_sweep, sweep_table
from repro.protocols import SfsProcess
from repro.sim import build_world
from repro.sim.scheduler import _MIN_COMPACT_SIZE

from conftest import attach_rows

N = 64
SWEEP_SEEDS = tuple(range(6))


def _large_cluster_round(seed: int = 3):
    """Four overlapping detection rounds on an n=64 cluster."""
    world = build_world(N, lambda: SfsProcess(t=4), seed=seed)
    for i in range(4):
        world.inject_suspicion(i, (i + 1) % N, at=1.0 + 0.1 * i)
    world.run_to_quiescence()
    return world


def test_bench_large_cluster_quiescence(benchmark):
    """n=64 run_to_quiescence: linear in events, not events x queue."""
    world = benchmark(_large_cluster_round)
    assert world.scheduler.pending_nonperiodic() == 0
    assert world.scheduler.processed > 10_000
    assert len(world.history().detected_pairs()) > 0


def test_bench_mass_cancellation_compaction(benchmark):
    """Crashing heartbeat-heavy processes must shrink the heap eagerly."""

    def run():
        world = _large_cluster_round()
        scheduler = world.scheduler
        horizon = scheduler.now + 1000.0
        handles = [
            scheduler.schedule_at(horizon + i, lambda: None)
            for i in range(5000)
        ]
        for handle in handles:
            handle.cancel()
        return scheduler

    scheduler = benchmark(run)
    # Compaction fired: of the 5000 cancelled entries only a sub-floor
    # residual (heaps under the compaction minimum are left alone) may
    # remain — the seed engine kept all 5000 until their due times.
    assert len(scheduler._queue) - scheduler.pending < _MIN_COMPACT_SIZE


def test_bench_sweep_serial(benchmark):
    """The sweep runner itself, serial path, on a mid-size workload."""
    rows = benchmark.pedantic(
        lambda: run_sweep("e7", seeds=SWEEP_SEEDS),
        rounds=1,
        iterations=1,
    )
    attach_rows(benchmark, [rows_digest(rows)])
    assert len(rows) == 2 * len(SWEEP_SEEDS)  # two protocols per seed


def test_bench_sweep_parallel_identical(benchmark):
    """Parallel sweep: same rows, same order, same digest as serial."""
    serial = run_sweep("e7", seeds=SWEEP_SEEDS, jobs=1)
    parallel = benchmark.pedantic(
        lambda: run_sweep("e7", seeds=SWEEP_SEEDS, jobs=4),
        rounds=1,
        iterations=1,
    )
    print(sweep_table(parallel))
    attach_rows(benchmark, [rows_digest(parallel)])
    assert parallel == serial
    assert rows_digest(parallel) == rows_digest(serial)
