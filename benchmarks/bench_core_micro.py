"""Micro-benchmarks for the library's hot paths (timing only).

Not tied to a paper table; these keep the engine honest: happens-before
stamping, Theorem 5 witness construction, full protocol rounds, and the
conformance checker, each timed on a realistic mid-size run.
"""

import pytest

from repro.analysis.checker import analyze
from repro.core.indistinguishability import (
    ensure_crashes,
    fail_stop_witness,
    fail_stop_witness_by_commutation,
)
from repro.protocols import SfsProcess
from repro.sim import build_world


def _mid_size_history():
    world = build_world(12, lambda: SfsProcess(t=3), seed=5)
    world.adversary.hold_suspicions_about(7, {7})
    world.inject_suspicion(0, 7, at=1.0)
    world.inject_suspicion(1, 8, at=1.2)
    world.inject_crash(9, at=0.5)
    world.inject_suspicion(2, 9, at=1.4)
    world.scheduler.schedule_at(30.0, world.adversary.heal)
    world.run_to_quiescence()
    return ensure_crashes(world.history()), world


HISTORY, WORLD = _mid_size_history()


def test_bench_protocol_round(benchmark):
    """One full detection round on n=12, t=3 from a cold world."""

    def run():
        world = build_world(12, lambda: SfsProcess(t=3), seed=1)
        world.inject_suspicion(0, 7, at=1.0)
        world.run_to_quiescence()
        return len(world.history())

    events = benchmark(run)
    assert events > 0


def test_bench_happens_before_stamping(benchmark):
    """Vector-clock stamping plus an all-pairs sample of hb queries."""

    def run():
        history = HISTORY.with_events(HISTORY.events)  # fresh caches
        count = 0
        step = max(1, len(history) // 40)
        for a in range(0, len(history), step):
            for b in range(0, len(history), step):
                count += history.happens_before(a, b)
        return count

    assert benchmark(run) >= 0


def test_bench_fail_stop_witness(benchmark):
    """Theorem 5 constraint-graph construction on a bad-pair-rich run."""
    result = benchmark(lambda: fail_stop_witness(HISTORY))
    assert len(result) == len(HISTORY)


def test_bench_witness_by_commutation(benchmark):
    """The appendix's pairwise commutation construction, same input."""
    result = benchmark(lambda: fail_stop_witness_by_commutation(HISTORY))
    assert len(result) == len(HISTORY)


def test_bench_full_conformance_report(benchmark):
    """analyze(): validity + Figure 1 + witness + quorum checks."""
    report = benchmark(
        lambda: analyze(HISTORY, WORLD.trace.quorum_records, t=3)
    )
    assert report.is_simulated_fail_stop
