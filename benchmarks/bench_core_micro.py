"""Micro-benchmarks for the library's hot paths (timing only).

Not tied to a paper table; these keep the engine honest: happens-before
stamping, Theorem 5 witness construction, full protocol rounds, and the
conformance checker, each timed on a realistic mid-size run.
"""

import pytest

from repro.analysis.checker import analyze
from repro.core.indistinguishability import (
    ensure_crashes,
    fail_stop_witness,
    fail_stop_witness_by_commutation,
)
from repro.protocols import SfsProcess
from repro.sim import build_world


def _mid_size_history():
    world = build_world(12, lambda: SfsProcess(t=3), seed=5)
    world.adversary.hold_suspicions_about(7, {7})
    world.inject_suspicion(0, 7, at=1.0)
    world.inject_suspicion(1, 8, at=1.2)
    world.inject_crash(9, at=0.5)
    world.inject_suspicion(2, 9, at=1.4)
    world.scheduler.schedule_at(30.0, world.adversary.heal)
    world.run_to_quiescence()
    return ensure_crashes(world.history()), world


HISTORY, WORLD = _mid_size_history()


def test_bench_protocol_round(benchmark):
    """One full detection round on n=12, t=3 from a cold world."""

    def run():
        world = build_world(12, lambda: SfsProcess(t=3), seed=1)
        world.inject_suspicion(0, 7, at=1.0)
        world.run_to_quiescence()
        return len(world.history())

    events = benchmark(run)
    assert events > 0


def test_bench_happens_before_stamping(benchmark):
    """Vector-clock stamping plus an all-pairs sample of hb queries."""

    def run():
        history = HISTORY.with_events(HISTORY.events)  # fresh caches
        count = 0
        step = max(1, len(history) // 40)
        for a in range(0, len(history), step):
            for b in range(0, len(history), step):
                count += history.happens_before(a, b)
        return count

    assert benchmark(run) >= 0


def test_bench_fail_stop_witness(benchmark):
    """Theorem 5 constraint-graph construction on a bad-pair-rich run."""
    result = benchmark(lambda: fail_stop_witness(HISTORY))
    assert len(result) == len(HISTORY)


def test_bench_witness_by_commutation(benchmark):
    """The appendix's pairwise commutation construction, same input."""
    result = benchmark(lambda: fail_stop_witness_by_commutation(HISTORY))
    assert len(result) == len(HISTORY)


def test_bench_full_conformance_report(benchmark):
    """analyze(): validity + Figure 1 + witness + quorum checks."""
    report = benchmark(
        lambda: analyze(HISTORY, WORLD.trace.quorum_records, t=3)
    )
    assert report.is_simulated_fail_stop


# ----------------------------------------------------------------------
# Per-component timings (PR 8): the three hot-path primitives in
# isolation, so a regression in one shows up directly instead of only
# as a blurred shift in the end-to-end numbers above.
# ----------------------------------------------------------------------


def test_bench_component_heap_push_pop(benchmark):
    """Scheduler entry churn alone: schedule then drain 2000 callbacks.

    Pure push/pop through the pooled entry fast path — no network, no
    processes — under an active SchedulerStoragePool, matching how every
    sharded run constructs its schedulers.
    """
    from repro.sim.scheduler import (
        Scheduler,
        SchedulerStoragePool,
        shared_scheduler_storage,
    )

    pool = SchedulerStoragePool()

    def run():
        with shared_scheduler_storage(pool):
            scheduler = Scheduler()
        for i in range(2000):
            scheduler.schedule_callback_at(float(i % 97), _noop_cb)
        executed = scheduler.run()
        scheduler.release_storage()
        return executed

    assert benchmark(run) == 2000


def _noop_cb() -> None:
    return None


def test_bench_component_delay_sampling(benchmark):
    """Delay model dispatch alone: 2000 single samples + batched pairs."""
    import random

    from repro.sim.delays import LogNormalDelay

    model = LogNormalDelay()
    pairs = [(src, dst) for src in range(10) for dst in range(10)] * 20

    def run():
        rng = random.Random(42)
        total = 0.0
        for src, dst in pairs:
            total += model.sample(rng, src, dst)
        total += sum(model.sample_batch(rng, pairs))
        return total

    assert benchmark(run) > 0.0


def test_bench_component_history_append(benchmark):
    """HistoryBuilder.append_one alone: a 2000-event send/recv stream."""
    from repro.core.events import recv, send
    from repro.core.history import HistoryBuilder
    from repro.core.messages import Message

    events = []
    for i in range(1000):
        src, dst = i % 12, (i + 1) % 12
        msg = Message(src, i, ("payload", i))
        events.append(send(src, dst, msg))
        events.append(recv(dst, src, msg))

    def run():
        builder = HistoryBuilder(12)
        append_one = builder.append_one
        for event in events:
            append_one(event)
        return len(builder.snapshot())

    assert benchmark(run) == 2000
