"""E4 — Theorem 7 + Corollary 8: the bounds table.

Regenerates the quorum/replication bound table for a spread of system
sizes, cross-checked against the counterexample-family construction
(empty intersection exactly at the floor of the bound). Shape to hold:
min quorum strictly exceeds n(t-1)/t; feasibility flips exactly at
t = isqrt(n-1).
"""

from repro.analysis.experiments import run_e4
from repro.analysis.report import print_table

from conftest import attach_rows

NS = (4, 9, 10, 16, 25, 26, 49, 50, 100, 101)


def test_e4_bounds_table(benchmark):
    rows = benchmark.pedantic(lambda: run_e4(ns=NS), rounds=1, iterations=1)
    print_table(
        "E4  Theorem 7 / Corollary 8: minimum quorum and max tolerable t",
        rows,
    )
    attach_rows(benchmark, rows)
    for row in rows:
        assert row.min_quorum > row.n * (row.t - 1) / row.t
        assert row.family_intersection_empty
        assert row.feasible == (row.n > row.t * row.t)
