"""E18 — coverage-guided fuzzing: adaptive overhead and shrink cost.

Not a paper table; this guards the PR that made the fuzzer
coverage-guided. Three properties must hold:

1. **guidance is affordable**: an adaptive campaign (coverage folding
   between batches, weight re-derivation, weighted generation) stays
   within a small constant factor of the uniform campaign it replaces —
   the budget goes to simulating scenarios, not to steering;
2. **the coverage signal is cheap**: folding a campaign's outcomes into
   a ``CoverageMap`` costs far less than producing them, so tracking can
   stay always-on;
3. **shrinking is bounded**: minimising a finding costs about
   ``attempts`` replays of (shrinking) candidate scenarios, never more —
   the greedy loop's budget is real.

The adaptive campaign is run twice and digest-compared, so a
nondeterministic steering loop fails the bench loudly before it ever
reaches CI's adaptive-fuzz smoke.
"""

import time

from repro.analysis.coverage import CoverageMap
from repro.analysis.fuzz import (
    Scenario,
    run_adaptive_fuzz,
    run_fuzz,
    run_scenario,
)
from repro.analysis.shrink import scenario_size, shrink
from repro.sim.failures import Fault

from conftest import attach_rows

FUZZ_COUNT = 40
BATCH = 10

# Generous CI-jitter bound: adaptive steering that costs this much more
# than uniform sampling means the guidance stopped being per-batch work.
ADAPTIVE_OVERHEAD_LIMIT = 4.0

# One seeded violation wrapped in adversary noise; what `--shrink` sees.
SABOTAGED = Scenario(
    index=0, seed=42, n=6, protocol="sfs", t=2, quorum_size=None,
    delay=("uniform", (0.1, 0.8)), detector=("none", ()),
    faults=(
        Fault("crash", 2.0, 1),
        Fault("suspicion", 2.5, 0, 1),
        Fault("forge_failed", 3.0, 4, 4),
    ),
    holds=((2, (2, 3)),),
    partition=((0, 1, 2), (3, 4, 5)),
    heal_at=12.0,
    chatter=((1.0, 0, 2, 0), (2.0, 3, 5, 1), (4.0, 2, 0, 2)),
    horizon=None,
)


def test_bench_adaptive_campaign_overhead(benchmark):
    """Adaptive steering: clean, reproducible, near uniform-fuzz cost."""
    start = time.perf_counter()
    uniform = run_fuzz(seed=0, count=FUZZ_COUNT)
    uniform_s = time.perf_counter() - start
    assert uniform.findings == ()

    adaptive = benchmark.pedantic(
        lambda: run_adaptive_fuzz(seed=0, count=FUZZ_COUNT, batch=BATCH),
        rounds=1, iterations=1,
    )
    adaptive_s = benchmark.stats.stats.mean
    assert adaptive.report.findings == ()
    assert (
        adaptive.digest()
        == run_adaptive_fuzz(seed=0, count=FUZZ_COUNT, batch=BATCH).digest()
    )
    assert adaptive_s < uniform_s * ADAPTIVE_OVERHEAD_LIMIT, (
        adaptive_s, uniform_s
    )
    attach_rows(
        benchmark,
        [
            f"uniform   {FUZZ_COUNT} scenarios in {uniform_s:.3f}s "
            f"({FUZZ_COUNT / uniform_s:.1f}/s)",
            f"adaptive  {FUZZ_COUNT} scenarios in {adaptive_s:.3f}s "
            f"({FUZZ_COUNT / adaptive_s:.1f}/s, "
            f"{adaptive_s / uniform_s:.2f}x, batch={BATCH})",
        ],
    )


def test_bench_coverage_fold_is_cheap(benchmark):
    """Folding outcomes into a CoverageMap costs << producing them."""
    start = time.perf_counter()
    campaign = run_adaptive_fuzz(seed=0, count=FUZZ_COUNT, batch=BATCH)
    simulate_s = time.perf_counter() - start

    folded = benchmark.pedantic(
        lambda: CoverageMap.from_outcomes(campaign.outcomes),
        rounds=5, iterations=1,
    )
    fold_s = benchmark.stats.stats.mean
    assert folded.digest() == campaign.coverage.digest()
    assert fold_s < simulate_s, (fold_s, simulate_s)
    attach_rows(
        benchmark,
        [
            f"simulate  {FUZZ_COUNT} scenarios in {simulate_s:.3f}s",
            f"fold      {len(folded)} features in {fold_s * 1000:.1f}ms "
            f"({fold_s / simulate_s:.1%} of simulation)",
        ],
    )


def test_bench_shrink_cost_per_finding(benchmark):
    """Shrinking costs ~attempts replays of shrinking candidates."""
    start = time.perf_counter()
    probe = run_scenario(SABOTAGED)
    single_s = time.perf_counter() - start
    assert probe.findings

    result = benchmark.pedantic(
        lambda: shrink(SABOTAGED), rounds=1, iterations=1
    )
    shrink_s = benchmark.stats.stats.mean
    assert scenario_size(result.minimal) < scenario_size(SABOTAGED)
    # Candidates only ever get smaller than the original, so the whole
    # greedy loop is bounded by one original-size replay per attempt
    # (plus generous constant slack for CI jitter on the tiny probe).
    assert shrink_s < single_s * result.attempts * 5.0 + 1.0, (
        shrink_s, single_s, result.attempts
    )
    attach_rows(
        benchmark,
        [
            f"one replay      {single_s * 1000:.1f}ms",
            f"shrink          {shrink_s * 1000:.1f}ms for "
            f"{result.attempts} attempts "
            f"({shrink_s / result.attempts * 1000:.1f}ms/attempt)",
            f"size            {scenario_size(SABOTAGED)} -> "
            f"{scenario_size(result.minimal)} in {len(result.steps)} steps",
        ],
    )
