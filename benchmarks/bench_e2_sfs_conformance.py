"""E2 — Figure 1 + Theorem 5: sFS conformance and the FS witness.

Regenerates the conformance table: over random fault schedules (half with
adversarial shields that force bad pairs), every run satisfies
FS1 ^ sFS2a-d and the Theorem 5 construction produces a verified FS run
isomorphic to it. Shape to hold: 100% conformance, 100% witnesses, bad
pairs present in a nontrivial fraction of runs (so the witness engine is
actually exercised).
"""

from repro.analysis.experiments import run_e2
from repro.analysis.report import print_table

from conftest import attach_rows

CONFIGS = ((4, 1), (6, 2), (9, 2), (12, 3))
SEEDS = tuple(range(20))


def test_e2_conformance(benchmark):
    rows = benchmark.pedantic(
        lambda: run_e2(configs=CONFIGS, seeds=SEEDS), rounds=1, iterations=1
    )
    print_table(
        "E2  Figure 1 / Theorem 5: sFS conformance and FS witnesses "
        "(random schedules, half adversarial)",
        rows,
    )
    attach_rows(benchmark, rows)
    for row in rows:
        assert row.sfs_conformant == row.runs
        assert row.witnesses_verified == row.runs
    assert any(row.runs_with_bad_pairs > 0 for row in rows)
