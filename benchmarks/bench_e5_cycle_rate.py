"""E5 — Theorem 7 tightness: cycle rate vs quorum size (echo protocol).

Regenerates the cycle-rate sweep: the Section 5 protocol run with
deliberately illegal quorum sizes forms failed-before cycles under the
shield adversary, and the rate drops to exactly zero at the legal minimum
(Lemma 9's witness-order argument). Shape to hold: positive rate well
below the bound, zero at and above it.
"""

from repro.analysis.experiments import run_e5
from repro.analysis.report import print_table
from repro.core.bounds import min_quorum_size

from conftest import attach_rows

N, T = 12, 3
SEEDS = tuple(range(25))


def test_e5_cycle_rate_sweep(benchmark):
    legal = min_quorum_size(N, T)
    sizes = tuple(range(2, legal + 2))
    rows = benchmark.pedantic(
        lambda: run_e5(n=N, t=T, quorum_sizes=sizes, seeds=SEEDS),
        rounds=1,
        iterations=1,
    )
    print_table(
        f"E5  Theorem 7 tightness: cycle rate vs quorum size "
        f"(n={N}, t={T}, legal minimum={legal})",
        rows,
        ["quorum_size", "at_or_above_bound", "runs", "runs_with_cycle"],
    )
    attach_rows(benchmark, rows)
    below = [row for row in rows if not row.at_or_above_bound]
    at_or_above = [row for row in rows if row.at_or_above_bound]
    assert any(row.runs_with_cycle > 0 for row in below)
    assert all(row.runs_with_cycle == 0 for row in at_or_above)
