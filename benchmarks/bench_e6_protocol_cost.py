"""E6 — Section 5 protocol cost: message complexity and latency scaling.

Regenerates the cost table: protocol messages per detected failure grow
Theta(n^2) (every participant echoes to everyone), detection completes in
about one round for the fixed-quorum policy, and the wait-for-all policy
pays extra first-detection latency for its weaker replication requirement.
Shape to hold: superlinear message growth; fixed <= wait-for-all latency.
"""

from repro.analysis.experiments import run_e6
from repro.analysis.report import print_table

from conftest import attach_rows

NS = (4, 6, 9, 12, 16, 25)


def test_e6_cost_scaling(benchmark):
    rows = benchmark.pedantic(lambda: run_e6(ns=NS), rounds=1, iterations=1)
    print_table(
        "E6  Section 5 cost: messages per failure and detection latency",
        rows,
    )
    attach_rows(benchmark, rows)
    fixed = [row for row in rows if row.policy == "fixed"]
    # Theta(n^2): messages/target at n=25 dwarf n=4 by far more than 25/4.
    assert fixed[-1].messages_per_target > 4 * fixed[0].messages_per_target
    for n in NS:
        fq = next(r for r in rows if r.n == n and r.policy == "fixed")
        wfa = next(r for r in rows if r.n == n and r.policy == "wait-for-all")
        assert fq.first_detection_latency <= wfa.first_detection_latency
