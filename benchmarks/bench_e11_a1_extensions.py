"""E11 + A1 — extension experiments (Section 6 probe and design ablation).

E11: does detection-knowledge piggybacking push failed-before towards the
transitive relation Section 6 muses about? Measured answer: no — ordering
inversions and crash-truncated logs occur at identical rates, because
knowledge and confirmations ride the same FIFO channels. Shape to hold:
identical columns for both protocols, full sFS conformance for both.

A1: remove the "takes no other action" deferral from the Section 5
protocol and sFS2d genuinely breaks under a cross-channel race; with it,
never. Shape to hold: a strict 0% / 100% split.
"""

from repro.analysis.extensions import run_a1, run_e11
from repro.analysis.report import print_table

from conftest import attach_rows


def test_e11_transitivity_probe(benchmark):
    rows = benchmark.pedantic(
        lambda: run_e11(seeds=range(25)), rounds=1, iterations=1
    )
    print_table(
        "E11  Section 6 probe: knowledge piggybacking vs plain sFS",
        rows,
    )
    attach_rows(benchmark, rows)
    plain = next(r for r in rows if r.protocol == "sfs")
    piggy = next(r for r in rows if r.protocol == "sfs+piggyback")
    # The finding: the decoration changes nothing measurable...
    assert piggy.inversions == plain.inversions
    assert piggy.truncated_logs == plain.truncated_logs
    # ...while both remain fully conformant, and the phenomena are real.
    assert plain.sfs_conformant == plain.runs
    assert piggy.sfs_conformant == piggy.runs
    assert plain.inversions > 0


def test_a1_deferral_ablation(benchmark):
    rows = benchmark.pedantic(
        lambda: run_a1(seeds=range(10)), rounds=1, iterations=1
    )
    print_table(
        "A1  Ablation: sFS2d with and without application-message deferral",
        rows,
    )
    attach_rows(benchmark, rows)
    with_deferral = next(r for r in rows if r.defer_app)
    without = next(r for r in rows if not r.defer_app)
    assert with_deferral.sfs2d_violations == 0
    assert without.violation_rate == 1.0
